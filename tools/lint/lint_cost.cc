#include "lint_cost.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace catnap_lint {

namespace {

/** Identifiers whose presence in a hot body means dynamic allocation.
 * Container growth methods (push_back/resize/reserve) are deliberately
 * absent: amortised growth into pre-reserved storage is the sanctioned
 * hot-path idiom, and banning it would force suppressions everywhere
 * (see DESIGN.md §16 for the trade-off). */
const std::set<std::string> &
alloc_idents()
{
    static const std::set<std::string> s = {
        "new",      "delete",     "make_unique", "make_shared",
        "malloc",   "calloc",     "realloc",     "free",
        "strdup",   "aligned_alloc",
    };
    return s;
}

/** Lock/synchronisation types whose construction acquires a lock. */
const std::set<std::string> &
lock_idents()
{
    static const std::set<std::string> s = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "condition_variable", "condition_variable_any",
    };
    return s;
}

/** Receiver methods that acquire or release a lock (`m.lock()`). */
const std::set<std::string> &
lock_methods()
{
    static const std::set<std::string> s = {
        "lock",          "unlock",          "try_lock",
        "try_lock_for",  "try_lock_until",  "lock_shared",
        "unlock_shared", "try_lock_shared", "wait",
        "notify_one",    "notify_all",
    };
    return s;
}

/** Identifiers that perform I/O (stream objects, stdio calls). */
const std::set<std::string> &
io_idents()
{
    static const std::set<std::string> s = {
        "printf", "fprintf", "vfprintf", "snprintf", "sprintf",
        "puts",   "fputs",   "putchar",  "fputc",    "fwrite",
        "fread",  "fopen",   "fclose",   "fflush",   "fgets",
        "fscanf", "scanf",   "ofstream", "ifstream", "fstream",
        "cout",   "cerr",    "clog",     "cin",      "getline",
        "system", "popen",   "remove",   "rename",
    };
    return s;
}

} // namespace

std::vector<char>
compute_hot_set(const Program &prog)
{
    std::vector<char> hot(prog.defs.size(), 0);
    std::vector<int> work;
    for (std::size_t i = 0; i < prog.defs.size(); ++i) {
        const FunctionDef &d = prog.defs[i];
        if (d.cold_path)
            continue;
        if (d.phase != 0 || d.name == "evaluate" || d.name == "commit") {
            hot[i] = 1;
            work.push_back(static_cast<int>(i));
        }
    }
    while (!work.empty()) {
        const auto di = static_cast<std::size_t>(work.back());
        work.pop_back();
        const FunctionDef &d = prog.defs[di];
        for (const CallSite &cs : d.calls) {
            for (const int t : resolve_call(prog, d, cs)) {
                const auto ti = static_cast<std::size_t>(t);
                if (hot[ti] || prog.defs[ti].cold_path)
                    continue;
                hot[ti] = 1;
                work.push_back(t);
            }
        }
    }
    return hot;
}

void
check_l9(const Program &prog, const std::vector<char> &hot,
         const std::vector<SourceFile> &sources,
         std::vector<Violation> &out)
{
    for (std::size_t i = 0; i < prog.defs.size(); ++i) {
        if (!hot[i])
            continue;
        const FunctionDef &d = prog.defs[i];
        const SourceFile &f =
            sources[static_cast<std::size_t>(d.file)];
        if (!in_contract_scope(f))
            continue;
        const std::string qual =
            d.cls.empty() ? d.name : d.cls + "::" + d.name;
        const auto &t = f.tokens;
        for (std::size_t k = d.body_open + 1;
             k < d.body_close && k < t.size(); ++k) {
            const std::string &s = t[k].text;
            std::string what;
            if (s == "throw") {
                what = "throws an exception";
            } else if (alloc_idents().count(s) > 0) {
                what = "performs dynamic allocation ('" + s + "')";
            } else if (lock_idents().count(s) > 0) {
                what = "acquires a lock ('" + s + "')";
            } else if (lock_methods().count(s) > 0 && k > 0 &&
                       (t[k - 1].text == "." ||
                        t[k - 1].text == "->") &&
                       k + 1 < t.size() && t[k + 1].text == "(") {
                what = "acquires/releases a lock ('." + s + "()')";
            } else if (io_idents().count(s) > 0) {
                what = "performs I/O ('" + s + "')";
            } else {
                continue;
            }
            add_violation(
                out, f, t[k].line, "L9",
                "hot-path purity: '" + qual +
                    "' is in the tick closure (reachable from a"
                    " phase-annotated entry point) but " +
                    what +
                    "; move the work off the per-cycle path or mark"
                    " the slow-path entry CATNAP_COLD_PATH"
                    " (common/phase.h)");
        }
    }
}

namespace {

/** Everything the manifest records about one hot method. Overload
 * sets merge by max metric (and lexicographically-smallest file) so
 * the output is independent of definition order. */
struct MethodEntry
{
    std::string file;
    int indirection = 0;
    int virtual_calls = 0;
    int call_sites = 0;
    int est_bytes = 0;

    void merge(const MethodEntry &o)
    {
        if (file.empty() || (!o.file.empty() && o.file < file))
            file = o.file;
        indirection = std::max(indirection, o.indirection);
        virtual_calls = std::max(virtual_calls, o.virtual_calls);
        call_sites = std::max(call_sites, o.call_sites);
        est_bytes = std::max(est_bytes, o.est_bytes);
    }
};

/**
 * Maximum `->` chain depth of a body: the longest run of arrow
 * selectors within one postfix expression. Identifiers, `.`/`::`
 * selectors, and index/call closers extend a chain; any other token
 * (statement/argument boundaries, operators) resets it. A static
 * proxy for dependent-load depth — the figure the data-oriented
 * rewrite drives toward zero.
 */
int
max_indirection(const std::vector<Token> &t, std::size_t open,
                std::size_t close)
{
    int run = 0, best = 0;
    for (std::size_t k = open + 1; k < close && k < t.size(); ++k) {
        const std::string &s = t[k].text;
        if (s == "->") {
            best = std::max(best, ++run);
        } else if (!(is_ident_start(s[0]) || s == "." || s == "::" ||
                     s == ")" || s == "]")) {
            run = 0;
        }
    }
    return best;
}

} // namespace

std::string
build_hotpath_manifest(const Program &prog, const Effects &fx,
                       const std::vector<char> &hot,
                       const std::vector<SourceFile> &sources)
{
    // Distinct peer (class, via) pairs per definition, for the bytes
    // estimate: each crossing touches at least one remote word.
    std::vector<std::set<std::pair<std::string, std::string>>> peers(
        prog.defs.size());
    for (const PeerEdge &e : fx.edges)
        peers[static_cast<std::size_t>(e.def)].insert({e.cls, e.via});

    std::map<std::string, MethodEntry> methods;
    for (std::size_t i = 0; i < prog.defs.size(); ++i) {
        if (!hot[i])
            continue;
        const FunctionDef &d = prog.defs[i];
        if (d.cls.empty())
            continue; // free helpers show up via their callers
        const SourceFile &f =
            sources[static_cast<std::size_t>(d.file)];
        if (!in_contract_scope(f))
            continue;

        MethodEntry e;
        e.file = normalize_path(f.path);
        e.indirection =
            max_indirection(f.tokens, d.body_open, d.body_close);
        e.call_sites = static_cast<int>(d.calls.size());
        for (const CallSite &cs : d.calls)
            for (const int ti : resolve_call(prog, d, cs))
                if (prog.defs[static_cast<std::size_t>(ti)]
                        .is_virtual) {
                    ++e.virtual_calls;
                    break;
                }
        // Estimated bytes touched per call: one word per distinct
        // own-field key, referenced parameter, and peer crossing in
        // the closed effect summary. A lower bound on working-set
        // traffic, stable under reordering.
        std::set<std::string> field_keys(fx.own_reads[i].begin(),
                                         fx.own_reads[i].end());
        field_keys.insert(fx.own_writes[i].begin(),
                          fx.own_writes[i].end());
        std::set<int> param_keys(fx.param_reads[i].begin(),
                                 fx.param_reads[i].end());
        param_keys.insert(fx.param_writes[i].begin(),
                          fx.param_writes[i].end());
        e.est_bytes = 8 * static_cast<int>(field_keys.size() +
                                           param_keys.size() +
                                           peers[i].size());

        methods[d.cls + "::" + d.name].merge(e);
    }

    int tot_virtual = 0, tot_calls = 0, tot_bytes = 0, max_ind = 0;
    for (const auto &[name, e] : methods) {
        (void)name;
        tot_virtual += e.virtual_calls;
        tot_calls += e.call_sites;
        tot_bytes += e.est_bytes;
        max_ind = std::max(max_ind, e.indirection);
    }

    std::ostringstream os;
    os << "{\n  \"schema\": \"catnap-hotpath-v1\",\n  \"methods\": {";
    bool first = true;
    for (const auto &[name, e] : methods) {
        os << (first ? "" : ",") << "\n    \"" << name << "\": {"
           << "\"file\": \"" << e.file << "\", "
           << "\"indirection\": " << e.indirection << ", "
           << "\"virtual_calls\": " << e.virtual_calls << ", "
           << "\"call_sites\": " << e.call_sites << ", "
           << "\"est_bytes_per_call\": " << e.est_bytes << "}";
        first = false;
    }
    if (!first)
        os << "\n  ";
    os << "},\n  \"totals\": {\"methods\": " << methods.size()
       << ", \"call_sites\": " << tot_calls
       << ", \"virtual_calls\": " << tot_virtual
       << ", \"est_bytes_per_call\": " << tot_bytes
       << ", \"max_indirection\": " << max_ind << "}\n}\n";
    return os.str();
}

void
check_l10_baseline(const std::string &baseline_path,
                   const std::string &json, std::vector<Violation> &out)
{
    static const char *kHint =
        "; regenerate via `catnap_lint --hotpath-out"
        " results/hotpath.json src` from the repo root and review the"
        " diff — every hot-path cost change must be a reviewed diff";
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
        out.push_back({baseline_path, 1, "L10",
                       "hot-path baseline '" + baseline_path +
                           "' is missing or unreadable" + kHint});
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string baseline = ss.str();
    if (baseline == json)
        return;

    int line = 1;
    for (std::size_t i = 0;
         i < baseline.size() && i < json.size() &&
         baseline[i] == json[i];
         ++i) {
        if (baseline[i] == '\n')
            ++line;
    }
    out.push_back(
        {baseline_path, line, "L10",
         "hot-path manifest drift: the per-method cost profile no"
         " longer matches the checked-in baseline (first difference"
         " at line " +
             std::to_string(line) + ")" + kHint});
}

} // namespace catnap_lint
