# Golden-file test for catnap_lint's L10 hot-path cost manifest. Runs
# the linter on a fixture from the lint source directory (so the
# embedded file path stays relative and machine-independent) TWICE, and
# byte-compares both emissions against the checked-in golden: one
# compare catches cost-profile drift, two catch nondeterminism (the
# same run-twice contract results/hotpath.json is held to in CI).
#
# cmake -DLINT=<catnap_lint> -DSRC_DIR=<tools/lint>
#       -DFIXTURE=<fixtures/x.cc> -DOUT=<build/x.hotpath.json>
#       -DGOLDEN=<fixtures/golden_x.json> -P run_hotpath_test.cmake

foreach(var LINT SRC_DIR FIXTURE OUT GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_hotpath_test.cmake: -D${var}=... is required")
  endif()
endforeach()

foreach(pass out out2)
  execute_process(
    COMMAND "${LINT}" --hotpath-out "${OUT}.${pass}" "${FIXTURE}"
    WORKING_DIRECTORY "${SRC_DIR}"
    RESULT_VARIABLE lint_rc
    OUTPUT_VARIABLE lint_out
    ERROR_VARIABLE lint_err)
  if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR
            "catnap_lint exited ${lint_rc}\n${lint_out}${lint_err}")
  endif()
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT}.${pass}"
            "${GOLDEN}"
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "hot-path manifest ${OUT}.${pass} differs from golden"
            " ${GOLDEN}; regenerate with --hotpath-out and review")
  endif()
endforeach()
