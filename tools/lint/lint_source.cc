#include "lint_source.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace catnap_lint {

bool
is_ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_host_side(const std::string &path)
{
    if (path.find("src/exec/") != std::string::npos)
        return true;
    // The sweep service is supervisor machinery like src/exec/: socket
    // I/O, host-time trace stamps, and retry cadences never run during
    // a simulation phase.
    if (path.find("src/serve/") != std::string::npos)
        return true;
    // Test drivers orchestrate simulations from the outside: host
    // timeouts and duration asserts legitimately read the host clock,
    // and their helper scaffolding is not tick-path code.
    if (path.find("tests/") != std::string::npos)
        return true;
    // The linter itself (--timing reads the host monotonic clock) —
    // but not its fixtures, which must flow through the full pipeline
    // to exercise the rules they seed.
    return path.find("tools/lint/") != std::string::npos &&
           path.find("fixtures") == std::string::npos;
}

namespace {

/**
 * Records `// catnap-lint: allow(L1,L3)` style suppressions found in
 * @p line_text (searched before comment stripping). A trailing allow
 * suppresses findings on its own line; an allow comment standing alone
 * on a line suppresses findings on the *next* line.
 */
void
collect_allows(const std::string &line_text, int line,
               std::map<int, std::set<std::string>> &allowed)
{
    const std::string marker = "catnap-lint: allow(";
    const auto pos = line_text.find(marker);
    if (pos == std::string::npos)
        return;
    const auto open = pos + marker.size();
    const auto close = line_text.find(')', open);
    if (close == std::string::npos)
        return;

    // Standalone comment line (only whitespace before the `//`)?
    const auto slashes = line_text.rfind("//", pos);
    bool standalone = false;
    if (slashes != std::string::npos) {
        standalone = true;
        for (std::size_t i = 0; i < slashes; ++i) {
            if (!std::isspace(static_cast<unsigned char>(line_text[i]))) {
                standalone = false;
                break;
            }
        }
    }
    const int target = standalone ? line + 1 : line;

    std::string rules = line_text.substr(open, close - open);
    std::string rule;
    std::istringstream rs(rules);
    while (std::getline(rs, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty())
            allowed[target].insert(rule);
    }
}

} // namespace

std::vector<Token>
tokenize(const std::string &text)
{
    std::string clean = text;
    enum class State { kCode, kLine, kBlock, kString, kChar };
    State st = State::kCode;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const char c = clean[i];
        const char n = i + 1 < clean.size() ? clean[i + 1] : '\0';
        switch (st) {
          case State::kCode:
            if (c == '/' && n == '/') {
                st = State::kLine;
                clean[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = State::kBlock;
                clean[i] = ' ';
            } else if (c == '"') {
                st = State::kString;
            } else if (c == '\'') {
                st = State::kChar;
            }
            break;
          case State::kLine:
            if (c == '\n')
                st = State::kCode;
            else
                clean[i] = ' ';
            break;
          case State::kBlock:
            if (c == '*' && n == '/') {
                clean[i] = ' ';
                clean[i + 1] = ' ';
                ++i;
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          case State::kString:
          case State::kChar: {
            const char quote = st == State::kString ? '"' : '\'';
            if (c == '\\') {
                clean[i] = ' ';
                if (n != '\n' && i + 1 < clean.size())
                    clean[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          }
        }
    }

    static const std::set<std::string> kTwoCharOps = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    };

    std::vector<Token> tokens;
    int line = 1;
    for (std::size_t i = 0; i < clean.size();) {
        const char c = clean[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (is_ident_start(c)) {
            std::size_t j = i;
            while (j < clean.size() && is_ident_char(clean[j]))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < clean.size() &&
                   (is_ident_char(clean[j]) || clean[j] == '.'))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (i + 1 < clean.size() &&
            kTwoCharOps.count(clean.substr(i, 2)) > 0) {
            tokens.push_back({clean.substr(i, 2), line});
            i += 2;
            continue;
        }
        tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return tokens;
}

bool
load_file(const std::string &path, SourceFile &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    out.path = path;
    std::istringstream ls(text);
    std::string line_text;
    int line = 1;
    while (std::getline(ls, line_text)) {
        collect_allows(line_text, line, out.allowed);
        ++line;
    }
    out.tokens = tokenize(text);
    return true;
}

bool
suppressed(const SourceFile &f, int line, const std::string &rule)
{
    const auto it = f.allowed.find(line);
    return it != f.allowed.end() && it->second.count(rule) > 0;
}

void
collect_files(const std::string &arg, std::vector<std::string> &files)
{
    namespace fs = std::filesystem;
    if (fs::is_directory(arg)) {
        std::vector<std::string> found;
        for (auto it = fs::recursive_directory_iterator(arg);
             it != fs::recursive_directory_iterator(); ++it) {
            // Fixture directories hold deliberately-broken inputs.
            if (it->is_directory() &&
                it->path().filename() == "fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                found.push_back(it->path().string());
        }
        // Deterministic report order regardless of directory walk order.
        std::sort(found.begin(), found.end());
        files.insert(files.end(), found.begin(), found.end());
    } else {
        files.push_back(arg);
    }
}

} // namespace catnap_lint
