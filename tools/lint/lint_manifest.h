/**
 * @file
 * The L8 effects manifest (DESIGN.md §14): a machine-readable,
 * deterministic JSON contract of every simulator class's inferred
 * read/write/visible/cross-component surface. The checked-in copy
 * (results/effects.json) is the interface the sharded core consumes;
 * CI regenerates it and fails on drift, so every change to what a
 * component touches is a reviewed diff, not a silent behaviour shift.
 *
 * Scope matches L6/L7: only tick-path definitions in contract scope
 * (files under src/, or named explicitly on the command line)
 * contribute. Output is byte-stable — classes, fields, and edges are
 * emitted in sorted order with no timestamps.
 */
#ifndef CATNAP_LINT_MANIFEST_H
#define CATNAP_LINT_MANIFEST_H

#include <string>
#include <vector>

#include "lint_effects.h"
#include "lint_graph.h"
#include "lint_rules.h"
#include "lint_source.h"

namespace catnap_lint {

/** Renders the manifest JSON ("catnap-effects-v1"). */
std::string build_effects_manifest(const Program &prog,
                                   const Effects &fx,
                                   const std::vector<SourceFile> &sources);

/** Writes @p json to @p path; false on IO failure (caller must report
 * loudly — a silently missing manifest defeats the CI gate). */
bool write_effects_manifest(const std::string &path,
                            const std::string &json);

/**
 * Compares @p json against the checked-in baseline at @p baseline_path
 * and appends one L8 violation on any difference (or a missing /
 * unreadable baseline), with the regeneration command in the message.
 */
void check_l8_baseline(const std::string &baseline_path,
                       const std::string &json,
                       std::vector<Violation> &out);

} // namespace catnap_lint

#endif // CATNAP_LINT_MANIFEST_H
