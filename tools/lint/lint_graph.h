/**
 * @file
 * Structural view of the input set for catnap_lint (DESIGN.md §11,
 * §14): class scopes with base lists, member-ownership tables,
 * function definitions with parsed parameter lists, receiver-classified
 * call sites, and field-level access records. L4/L5 consume the call
 * graph; the effect-inference pass (lint_effects.h) consumes the
 * access records and receiver classes; L1-L3 stay purely token-local.
 *
 * Ownership model (the shard-safety contract's foundation): a member
 * held by value or through std::unique_ptr/std::shared_ptr is *owned* —
 * it lives on the same shard as its owner, so effects on it collapse
 * into an effect on the owning field. A member held by raw pointer or
 * reference is a *peer* — another component instance that the future
 * sharded core may place on a different shard, so effects through it
 * are cross-component. Locals declared with an explicit class type
 * (`Router *nbr = ...`, including range-for) are peers too; receivers
 * of unknown type (auto locals, unresolved call results) are skipped
 * conservatively.
 */
#ifndef CATNAP_LINT_GRAPH_H
#define CATNAP_LINT_GRAPH_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_source.h"

namespace catnap_lint {

/** One `class`/`struct` body brace range with its direct bases. */
struct ClassScope
{
    std::size_t open;  ///< index of the body `{`
    std::size_t close; ///< index of the matching `}`
    std::string name;
    std::vector<std::string> bases; ///< direct base-class names
};

/** Function names collected from CATNAP_PHASE_* annotations (L2's
 * name-level view; L4-L7 use the class-qualified PhaseAnnot list). */
struct PhaseTable
{
    std::set<std::string> read_fns;
    std::set<std::string> write_fns;
};

/** How a member field holds the object behind it (see file comment). */
enum class MemberKind : std::uint8_t {
    kValue,    ///< by value (or unique_ptr/shared_ptr): owned
    kOwnedPtr, ///< unique_ptr/shared_ptr: owned, deref stays on-shard
    kPeerPtr,  ///< raw pointer or reference: a peer instance
};

/** One parsed member-variable declaration. */
struct MemberDecl
{
    MemberKind kind = MemberKind::kValue;
    std::string cls; ///< pointee/element class when recognisable; ""
    bool unordered = false;   ///< unordered_{map,set,...} in the type
    bool float_typed = false; ///< `float`/`double` in the type (L11)
};

/** One parsed function parameter. */
struct Param
{
    std::string name;
    std::string cls;      ///< last input-set class named in the type
    bool by_ref = false;  ///< `&` or `*` at the top level of the type
    bool is_const = false;
};

/** Receiver classification of a call site (or of a field chain). */
enum class Recv : std::uint8_t {
    kNone,        ///< bare call: `name(...)` (self or free)
    kThis,        ///< `this->name(...)`
    kMemberOwned, ///< through an owned member (value/unique_ptr)
    kMemberPeer,  ///< through a raw-pointer/reference member
    kLocalPeer,   ///< through an explicitly-typed class local
    kParam,       ///< through a reference/pointer parameter
    kResultPeer,  ///< through the result of a peer-context call
    kUnknown,     ///< receiver type not derivable (skipped)
};

/** One call site inside a function body. */
struct CallSite
{
    std::string name;
    std::string cls_hint;      ///< explicit `Cls::` qualifier, if any
    bool via_receiver = false; ///< `obj.name(..)` / `ptr->name(..)`
    Recv recv = Recv::kNone;
    std::string recv_field; ///< owning member field (Member* receivers)
    std::string recv_cls;   ///< receiver's class, when known
    int recv_param = -1;    ///< parameter index (kParam receivers)
    int prev_call = -1;     ///< producing call index (kResultPeer)
    std::vector<std::string> arg_bases; ///< base ident per argument
    int line = 0;
};

/** One access to a field of the *enclosing* class. The key is either
 * a bare member name (`foo_`) or one sub-field deep (`foo_.state`);
 * deeper chains collapse to the first sub-field level. */
struct FieldAccess
{
    std::string key;
    bool write = false;
    int line = 0;
};

/** One access through a reference/pointer parameter. */
struct ParamAccess
{
    int param = -1;
    bool write = false;
    int line = 0;
};

/** One direct field access on a *peer* instance (cross-component). */
struct PeerFieldAccess
{
    std::string cls; ///< peer's class
    std::string key; ///< field key on the peer
    bool write = false;
    int line = 0;
};

/** One function definition (a name with a parsed body). */
struct FunctionDef
{
    std::string name;
    std::string cls; ///< enclosing/qualifying class; "" for free fns
    int file = -1;   ///< index into the sources vector
    int line = 0;
    int phase = 0; ///< 0 none, 1 READ, 2 WRITE (resolved from annots)
    bool shard_safe = false; ///< CATNAP_SHARD_SAFE (resolved)
    bool cold_path = false;  ///< CATNAP_COLD_PATH (resolved)
    bool is_virtual = false; ///< `virtual` seen or `override`/`final`
    std::size_t body_open = 0;  ///< body `{` token index (L9-L11)
    std::size_t body_close = 0; ///< matching `}` token index
    std::string ret_cls; ///< input-set class named in the return type
    bool writes_members = false; ///< direct own/peer field write (L5)
    std::vector<Param> params;
    std::vector<CallSite> calls;
    std::vector<FieldAccess> accesses;
    std::vector<ParamAccess> param_accesses;
    std::vector<PeerFieldAccess> peer_accesses;
};

/** One CATNAP_PHASE_* marker with its class context. */
struct PhaseAnnot
{
    std::string name;
    std::string cls;
    int phase; ///< 1 READ, 2 WRITE
};

/** One CATNAP_SHARD_SAFE or CATNAP_COLD_PATH marker with its class
 * context (the two markers share the {name, class} shape). */
struct ShardAnnot
{
    std::string name;
    std::string cls;
};

/** Whole-input call-graph and ownership data. */
struct Program
{
    std::vector<FunctionDef> defs;
    std::vector<PhaseAnnot> annots;
    std::vector<ShardAnnot> shard_annots;
    std::vector<ShardAnnot> cold_annots; ///< CATNAP_COLD_PATH markers
    std::map<std::string, std::vector<int>> defs_by_name;
    std::map<std::pair<std::string, std::string>, std::vector<int>>
        defs_by_cls; ///< (cls, name) -> def indices
    std::set<std::string> class_names;
    std::map<std::string, std::vector<std::string>> class_bases;
    std::map<std::string, std::set<std::string>>
        derived_of; ///< base -> all transitive derived classes
    std::map<std::string, std::set<std::string>>
        ancestors_of; ///< class -> all transitive bases
    std::map<std::pair<std::string, std::string>, MemberDecl>
        members; ///< (cls, field) -> ownership
};

/** Tokens that look like `name(` but are never calls or definitions. */
const std::set<std::string> &non_call_keywords();

/** Index of the matching closer for the opener at @p open, or npos. */
std::size_t match_forward(const std::vector<Token> &t, std::size_t open,
                          const std::string &opener,
                          const std::string &closer);

/** True for a member-variable-looking identifier (`foo_` style). */
bool is_member_ident(const std::string &s);

/** Collects the `class`/`struct` body brace ranges of @p t, with the
 * direct base-class names from each inheritance list. */
std::vector<ClassScope>
collect_class_scopes(const std::vector<Token> &t);

/** Name of the innermost class body containing token @p idx, or "". */
std::string enclosing_class(const std::vector<ClassScope> &scopes,
                            std::size_t idx);

/**
 * Finds the body of the function definition whose name token is at
 * @p name_idx; returns {body_open, body_close} brace indices or npos.
 * Handles cv/ref/noexcept/override/final qualifiers, trailing return
 * types, and constructor initializer lists (paren and brace form);
 * rejects declarations, `= default`, `= delete`, and pure virtuals.
 */
std::pair<std::size_t, std::size_t>
find_body(const std::vector<Token> &t, std::size_t name_idx);

/** Registers @p scopes' class names and base lists into @p prog. */
void register_classes(const std::vector<ClassScope> &scopes,
                      Program &prog);

/** Finalises derived_of/ancestors_of from the registered base lists. */
void finalize_class_hierarchy(Program &prog);

/**
 * Collects class-qualified CATNAP_PHASE_* and CATNAP_SHARD_SAFE
 * annotations: the identifier immediately preceding the next '(' after
 * the marker, with either its explicit `Cls::` qualifier or the
 * enclosing class scope. Also feeds L2's name-level PhaseTable.
 */
void collect_phase_annotations(const SourceFile &f,
                               const std::vector<ClassScope> &scopes,
                               Program &prog, PhaseTable &table);

/**
 * Parses member-variable declarations inside each class scope of @p f
 * into prog.members. Requires every input's classes to be registered
 * first (class names disambiguate pointee types).
 */
void collect_members(const SourceFile &f,
                     const std::vector<ClassScope> &scopes,
                     Program &prog);

/**
 * Collects every function definition (with body) in @p f: parameter
 * lists, return class, virtual-ness, field accesses with receiver
 * classification, and call sites. Requires class registration and
 * collect_members over *all* inputs to have run first.
 */
void collect_defs(int file_idx, const SourceFile &f,
                  const std::vector<ClassScope> &scopes, Program &prog);

/**
 * Resolves a definition's phase from the annotation list: an exact
 * (class, name) annotation wins; otherwise a name-level annotation
 * applies only when every annotation of that name agrees.
 */
int resolve_phase(const Program &prog, const FunctionDef &d);

/** True when @p d (or a declaration it overrides, via the class
 * hierarchy) carries CATNAP_SHARD_SAFE. */
bool resolve_shard_safe(const Program &prog, const FunctionDef &d);

/** True when any CATNAP_SHARD_SAFE annotation bears @p name (for
 * calls that resolve to no definition in the input set). */
bool annot_shard_safe_name(const Program &prog, const std::string &name);

/** True when @p d (or a declaration it overrides, via the class
 * hierarchy) carries CATNAP_COLD_PATH: pruned from the hot-path
 * closure that seeds rules L9/L10 (see lint_cost.h). */
bool resolve_cold_path(const Program &prog, const FunctionDef &d);

/**
 * Resolves a call site to candidate definitions. Preference order:
 * the receiver's class (plus its transitive bases and derived classes,
 * so virtual dispatch through a base pointer finds the overrides) when
 * the scan classified one; explicit `Cls::` qualifier; the caller's
 * own class for bare calls; any member definition for receiver calls;
 * any definition by name otherwise. @p recv_cls overrides the call
 * site's receiver class (used for kResultPeer receivers whose class is
 * only known after resolving the producing call).
 */
std::vector<int> resolve_call(const Program &prog,
                              const FunctionDef &caller,
                              const CallSite &cs,
                              const std::string &recv_cls = "");

/** Phase of a call by name alone (annotation-level; for calls with no
 * definition in the input set). 0 when unknown or mixed. */
int annot_phase_of_name(const Program &prog, const std::string &name);

} // namespace catnap_lint

#endif // CATNAP_LINT_GRAPH_H
