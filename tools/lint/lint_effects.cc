#include "lint_effects.h"

#include "lint_rules.h"

#include <algorithm>

namespace catnap_lint {

bool
keys_alias(const std::string &w, const std::string &r)
{
    if (w == r || w == "*" || r == "*")
        return true;
    // A bare field key covers every sub-field of the same field.
    const auto wd = w.find('.');
    const auto rd = r.find('.');
    if (wd == std::string::npos && rd != std::string::npos)
        return r.compare(0, rd, w) == 0;
    if (rd == std::string::npos && wd != std::string::npos)
        return w.compare(0, wd, r) == 0;
    return false;
}

namespace {

/** Resolves a call's targets, handling kResultPeer receivers whose
 * class comes from the producing call's return type. */
std::vector<int>
resolve_targets(const Program &prog, const FunctionDef &d,
                const CallSite &cs, std::string *peer_cls_out)
{
    std::string recv_cls;
    if ((cs.recv == Recv::kResultPeer || cs.recv == Recv::kUnknown) &&
        cs.prev_call >= 0 &&
        static_cast<std::size_t>(cs.prev_call) < d.calls.size()) {
        const CallSite &prev =
            d.calls[static_cast<std::size_t>(cs.prev_call)];
        const std::vector<int> pt = resolve_call(prog, d, prev);
        for (const int ti : pt) {
            const std::string &rc =
                prog.defs[static_cast<std::size_t>(ti)].ret_cls;
            if (rc.empty() || (!recv_cls.empty() && rc != recv_cls)) {
                recv_cls.clear();
                break;
            }
            recv_cls = rc;
        }
    }
    if (peer_cls_out != nullptr) {
        if (cs.recv == Recv::kMemberPeer || cs.recv == Recv::kLocalPeer)
            *peer_cls_out = cs.recv_cls;
        else if (cs.recv == Recv::kResultPeer)
            *peer_cls_out = recv_cls;
        else
            peer_cls_out->clear();
    }
    return resolve_call(prog, d, cs, recv_cls);
}

template <typename T>
bool
merge_into(std::set<T> &dst, const std::set<T> &src)
{
    bool grew = false;
    for (const T &v : src)
        grew = dst.insert(v).second || grew;
    return grew;
}

} // namespace

Effects
infer_effects(const Program &prog,
              const std::vector<SourceFile> &sources)
{
    const std::size_t n = prog.defs.size();
    Effects fx;
    fx.own_reads.resize(n);
    fx.own_writes.resize(n);
    fx.param_reads.resize(n);
    fx.param_writes.resize(n);
    fx.writes_any.assign(n, 0);
    fx.in_tick.assign(n, 0);
    fx.read_reach.assign(n, 0);

    // Seeds: the direct accesses recorded by the body scan.
    for (std::size_t i = 0; i < n; ++i) {
        const FunctionDef &d = prog.defs[i];
        for (const FieldAccess &a : d.accesses)
            (a.write ? fx.own_writes[i] : fx.own_reads[i])
                .insert(a.key);
        for (const ParamAccess &a : d.param_accesses)
            (a.write ? fx.param_writes[i] : fx.param_reads[i])
                .insert(a.param);
        if (!d.peer_accesses.empty()) {
            for (const PeerFieldAccess &a : d.peer_accesses)
                if (a.write)
                    fx.writes_any[i] = 1;
        }
        if (!fx.own_writes[i].empty() || !fx.param_writes[i].empty())
            fx.writes_any[i] = 1;
    }

    // Binds one effect of a callee's parameter back onto the caller
    // through the argument's encoded base. Returns true on growth.
    const auto bind_arg = [&fx](std::size_t di, const CallSite &cs,
                                int p, bool write) {
        if (p < 0 ||
            static_cast<std::size_t>(p) >= cs.arg_bases.size())
            return false;
        const std::string &base =
            cs.arg_bases[static_cast<std::size_t>(p)];
        if (base.empty())
            return false;
        if (base == "this")
            return (write ? fx.own_writes[di] : fx.own_reads[di])
                .insert("*")
                .second;
        if (base[0] == '#') {
            const int q = std::stoi(base.substr(1));
            return (write ? fx.param_writes[di] : fx.param_reads[di])
                .insert(q)
                .second;
        }
        if (base[0] == '@') {
            // A peer instance handed to the callee: the write lands
            // cross-component (edge materialised in the edge pass).
            if (write && fx.writes_any[di] == 0) {
                fx.writes_any[di] = 1;
                return true;
            }
            return false;
        }
        return (write ? fx.own_writes[di] : fx.own_reads[di])
            .insert(base)
            .second;
    };

    // Fixpoint: propagate effects callee -> caller until stable. All
    // sets only grow and are bounded by the input size, so this
    // terminates; the cap is a safety net, not a tuning knob.
    for (int round = 0; round < 64; ++round) {
        bool changed = false;
        for (std::size_t di = 0; di < n; ++di) {
            const FunctionDef &d = prog.defs[di];
            for (const CallSite &cs : d.calls) {
                std::string peer_cls;
                const std::vector<int> targets =
                    resolve_targets(prog, d, cs, &peer_cls);

                bool callee_writes = false;
                for (const int t : targets) {
                    const auto ti = static_cast<std::size_t>(t);
                    callee_writes |= fx.writes_any[ti] != 0;
                    // Parameter-mediated effects apply to every
                    // receiver kind: the argument chooses the object.
                    for (const int p : fx.param_writes[ti])
                        changed |= bind_arg(di, cs, p, true);
                    for (const int p : fx.param_reads[ti])
                        changed |= bind_arg(di, cs, p, false);
                }
                if (targets.empty() &&
                    annot_phase_of_name(prog, cs.name) == 2)
                    callee_writes = true;

                switch (cs.recv) {
                  case Recv::kNone:
                  case Recv::kThis:
                    for (const int t : targets) {
                        const auto ti = static_cast<std::size_t>(t);
                        const FunctionDef &td = prog.defs[ti];
                        if (td.cls != d.cls && !td.cls.empty())
                            continue; // name-merged other class
                        changed |= merge_into(fx.own_reads[di],
                                              fx.own_reads[ti]);
                        changed |= merge_into(fx.own_writes[di],
                                              fx.own_writes[ti]);
                    }
                    break;
                  case Recv::kMemberOwned: {
                    // Effects inside an owned member collapse onto
                    // the owning field.
                    bool rd = false, wr = false;
                    for (const int t : targets) {
                        const auto ti = static_cast<std::size_t>(t);
                        rd |= !fx.own_reads[ti].empty();
                        wr |= !fx.own_writes[ti].empty();
                    }
                    if (!cs.recv_field.empty()) {
                        if (rd)
                            changed |= fx.own_reads[di]
                                           .insert(cs.recv_field)
                                           .second;
                        if (wr)
                            changed |= fx.own_writes[di]
                                           .insert(cs.recv_field)
                                           .second;
                    }
                    break;
                  }
                  case Recv::kMemberPeer:
                  case Recv::kLocalPeer:
                  case Recv::kResultPeer:
                    if (!peer_cls.empty() && callee_writes &&
                        fx.writes_any[di] == 0) {
                        fx.writes_any[di] = 1;
                        changed = true;
                    }
                    break;
                  case Recv::kParam:
                    if (cs.recv_param >= 0 && callee_writes) {
                        changed |=
                            fx.param_writes[di]
                                .insert(cs.recv_param)
                                .second;
                        // Calling any method observes the referent.
                        changed |= fx.param_reads[di]
                                       .insert(cs.recv_param)
                                       .second;
                    } else if (cs.recv_param >= 0 &&
                               !targets.empty()) {
                        changed |= fx.param_reads[di]
                                       .insert(cs.recv_param)
                                       .second;
                    }
                    break;
                  case Recv::kUnknown:
                    // Result of a bare (same-instance) call — the
                    // accessor idiom returns a reference into owned
                    // storage, so a mutating method on it is an
                    // own-side write (no peer edge, no L7).
                    if (cs.prev_call >= 0 && callee_writes &&
                        fx.writes_any[di] == 0) {
                        fx.writes_any[di] = 1;
                        changed = true;
                    }
                    break;
                }
            }
            if (fx.writes_any[di] == 0 &&
                (!fx.own_writes[di].empty() ||
                 !fx.param_writes[di].empty())) {
                fx.writes_any[di] = 1;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    // Edge pass: materialise every cross-component edge with final
    // write-ness and shard-safety.
    for (std::size_t di = 0; di < n; ++di) {
        const FunctionDef &d = prog.defs[di];
        for (const PeerFieldAccess &a : d.peer_accesses) {
            PeerEdge e;
            e.def = static_cast<int>(di);
            e.cls = a.cls;
            e.via = a.key;
            e.is_field = true;
            e.write = a.write;
            e.shard_safe = false;
            e.line = a.line;
            fx.edges.push_back(std::move(e));
        }
        for (const CallSite &cs : d.calls) {
            std::string peer_cls;
            const std::vector<int> targets =
                resolve_targets(prog, d, cs, &peer_cls);
            // Peer handed into a (usually free) helper that writes
            // through the corresponding parameter.
            for (const int t : targets) {
                const auto ti = static_cast<std::size_t>(t);
                for (const int p : fx.param_writes[ti]) {
                    if (p < 0 || static_cast<std::size_t>(p) >=
                                     cs.arg_bases.size())
                        continue;
                    const std::string &base =
                        cs.arg_bases[static_cast<std::size_t>(p)];
                    if (base.empty() || base[0] != '@')
                        continue;
                    PeerEdge e;
                    e.def = static_cast<int>(di);
                    e.cls = base.substr(1);
                    e.via = cs.name;
                    e.write = true;
                    e.shard_safe =
                        prog.defs[ti].shard_safe;
                    e.line = cs.line;
                    e.targets.push_back(t);
                    fx.edges.push_back(std::move(e));
                }
            }
            if (peer_cls.empty())
                continue;
            PeerEdge e;
            e.def = static_cast<int>(di);
            e.cls = peer_cls;
            e.via = cs.name;
            e.line = cs.line;
            e.targets = targets;
            if (targets.empty()) {
                e.write = annot_phase_of_name(prog, cs.name) == 2;
                e.shard_safe = annot_shard_safe_name(prog, cs.name);
            } else {
                e.write = false;
                e.shard_safe = true;
                for (const int t : targets) {
                    const auto ti = static_cast<std::size_t>(t);
                    e.write |= fx.writes_any[ti] != 0;
                    e.shard_safe &= prog.defs[ti].shard_safe;
                }
            }
            fx.edges.push_back(std::move(e));
        }
    }

    // Tick closure: everything reachable from a phase-annotated
    // function or an evaluate/commit entry point.
    {
        std::vector<int> worklist;
        for (std::size_t i = 0; i < n; ++i) {
            const FunctionDef &d = prog.defs[i];
            if (d.phase != 0 || d.name == "evaluate" ||
                d.name == "commit") {
                fx.in_tick[i] = 1;
                worklist.push_back(static_cast<int>(i));
            }
        }
        while (!worklist.empty()) {
            const auto di =
                static_cast<std::size_t>(worklist.back());
            worklist.pop_back();
            const FunctionDef &d = prog.defs[di];
            for (const CallSite &cs : d.calls) {
                for (const int t :
                     resolve_targets(prog, d, cs, nullptr)) {
                    if (fx.in_tick[static_cast<std::size_t>(t)] == 0) {
                        fx.in_tick[static_cast<std::size_t>(t)] = 1;
                        worklist.push_back(t);
                    }
                }
            }
        }
    }

    // Evaluate-phase closure: reachable from READ roots without
    // entering WRITE functions (a READ->WRITE path is an L2/L4
    // violation reported separately). CATNAP_SHARD_SAFE functions are
    // excluded on both ends: a declared crossing's internal reads are
    // mailbox/barrier implementation, not same-cycle peer observation
    // (the sharded core serialises them), so they must not widen any
    // class's visible surface.
    {
        std::vector<int> worklist;
        for (std::size_t i = 0; i < n; ++i) {
            if (prog.defs[i].phase == 1 && !prog.defs[i].shard_safe) {
                fx.read_reach[i] = 1;
                worklist.push_back(static_cast<int>(i));
            }
        }
        while (!worklist.empty()) {
            const auto di =
                static_cast<std::size_t>(worklist.back());
            worklist.pop_back();
            const FunctionDef &d = prog.defs[di];
            for (const CallSite &cs : d.calls) {
                for (const int t :
                     resolve_targets(prog, d, cs, nullptr)) {
                    const auto ti = static_cast<std::size_t>(t);
                    if (prog.defs[ti].phase == 2 ||
                        prog.defs[ti].shard_safe ||
                        fx.read_reach[ti] != 0)
                        continue;
                    fx.read_reach[ti] = 1;
                    worklist.push_back(t);
                }
            }
        }
    }

    // Visible sets: fields of each class that peers read during the
    // evaluate phase — the same-cycle-visible surface the sharded
    // core must publish at the barrier, and the set a READ-phase
    // function of that class must never commit to (L6).
    for (const PeerEdge &e : fx.edges) {
        const auto di = static_cast<std::size_t>(e.def);
        if (fx.read_reach[di] == 0)
            continue;
        const FunctionDef &d = prog.defs[di];
        // Out-of-scope readers (host-side tooling, model
        // instrumentation) do not widen the contract surface.
        if (d.file >= 0 &&
            static_cast<std::size_t>(d.file) < sources.size() &&
            !in_contract_scope(
                sources[static_cast<std::size_t>(d.file)]))
            continue;
        const std::string reader =
            d.cls.empty() ? d.name : d.cls + "::" + d.name;
        if (e.is_field) {
            if (!e.write)
                fx.visible[e.cls].emplace(e.via, reader);
            continue;
        }
        for (const int t : e.targets) {
            const auto ti = static_cast<std::size_t>(t);
            const FunctionDef &td = prog.defs[ti];
            // A shard-safe callee is the declared crossing: its reads
            // are mailbox internals, not peer observation.
            if (td.shard_safe)
                continue;
            const std::string via =
                td.cls.empty() ? td.name : td.cls + "::" + td.name;
            for (const std::string &k : fx.own_reads[ti])
                fx.visible[td.cls.empty() ? e.cls : td.cls].emplace(
                    k, via);
        }
    }

    return fx;
}

} // namespace catnap_lint
