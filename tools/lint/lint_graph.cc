#include "lint_graph.h"

#include <algorithm>

namespace catnap_lint {

namespace {

constexpr auto npos = std::string::npos;

const std::set<std::string> &
assign_ops()
{
    static const std::set<std::string> ops = {
        "=",  "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "++", "--",
    };
    return ops;
}

const std::set<std::string> &
mut_methods()
{
    static const std::set<std::string> m = {
        "push_back", "pop_back",  "clear",        "resize",
        "assign",    "insert",    "erase",        "emplace_back",
        "emplace",   "reserve",   "fill",         "push",
        "pop",       "push_front", "pop_front",   "reset",
    };
    return m;
}

/** Idents that can appear in a type but never name a class we track. */
bool
is_type_noise(const std::string &s)
{
    static const std::set<std::string> noise = {
        "const", "volatile", "static", "inline", "constexpr", "virtual",
        "mutable", "typename", "struct", "class", "unsigned", "signed",
        "long", "short", "int", "char", "bool", "float", "double",
        "void", "auto", "std", "override", "final", "explicit",
        "friend", "noexcept", "public", "private", "protected",
    };
    return noise.count(s) > 0;
}

} // namespace

const std::set<std::string> &
non_call_keywords()
{
    static const std::set<std::string> kw = {
        "if",       "for",      "while",    "switch",     "catch",
        "return",   "sizeof",   "alignof",  "decltype",   "typeid",
        "noexcept", "new",      "delete",   "throw",      "operator",
        "constexpr", "alignas", "defined",  "static_assert",
        "assert",
    };
    return kw;
}

std::size_t
match_forward(const std::vector<Token> &t, std::size_t open,
              const std::string &opener, const std::string &closer)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].text == opener)
            ++depth;
        else if (t[i].text == closer && --depth == 0)
            return i;
    }
    return npos;
}

bool
is_member_ident(const std::string &s)
{
    return s.size() > 1 && s.back() == '_' && is_ident_start(s[0]);
}

std::vector<ClassScope>
collect_class_scopes(const std::vector<Token> &t)
{
    std::vector<ClassScope> scopes;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].text == "template" && i + 1 < t.size() &&
            t[i + 1].text == "<") {
            const std::size_t close = match_forward(t, i + 1, "<", ">");
            if (close != npos)
                i = close;
            continue;
        }
        if (t[i].text != "class" && t[i].text != "struct")
            continue;
        if (i > 0 &&
            (t[i - 1].text == "enum" || t[i - 1].text == "friend"))
            continue;
        if (i + 1 >= t.size() || !is_ident_start(t[i + 1].text[0]))
            continue;
        const std::string name = t[i + 1].text;
        // Walk the head (base list etc.) to the body `{`; a `;` is a
        // forward declaration, a `(` an elaborated type in a decl.
        // Identifiers after the `:` are the direct bases.
        std::size_t k = i + 2;
        bool in_bases = false;
        std::vector<std::string> bases;
        while (k < t.size() && t[k].text != "{" && t[k].text != ";" &&
               t[k].text != "(") {
            if (t[k].text == ":")
                in_bases = true;
            else if (in_bases && is_ident_start(t[k].text[0]) &&
                     !is_type_noise(t[k].text) &&
                     !(k + 1 < t.size() && t[k + 1].text == "::"))
                bases.push_back(t[k].text);
            ++k;
        }
        if (k >= t.size() || t[k].text != "{")
            continue;
        const std::size_t close = match_forward(t, k, "{", "}");
        if (close == npos)
            continue;
        scopes.push_back({k, close, name, std::move(bases)});
    }
    return scopes;
}

std::string
enclosing_class(const std::vector<ClassScope> &scopes, std::size_t idx)
{
    std::string best;
    std::size_t best_span = npos;
    for (const ClassScope &s : scopes) {
        if (idx > s.open && idx < s.close &&
            s.close - s.open < best_span) {
            best = s.name;
            best_span = s.close - s.open;
        }
    }
    return best;
}

std::pair<std::size_t, std::size_t>
find_body(const std::vector<Token> &t, std::size_t name_idx)
{
    if (name_idx + 1 >= t.size() || t[name_idx + 1].text != "(")
        return {npos, npos};
    const std::size_t params_end =
        match_forward(t, name_idx + 1, "(", ")");
    if (params_end == npos)
        return {npos, npos};

    std::size_t k = params_end + 1;
    while (k < t.size()) {
        const std::string &s = t[k].text;
        if (s == "const" || s == "override" || s == "final" ||
            s == "&" || s == "&&") {
            ++k;
            continue;
        }
        if (s == "noexcept") {
            ++k;
            if (k < t.size() && t[k].text == "(") {
                const std::size_t c = match_forward(t, k, "(", ")");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            }
            continue;
        }
        if (s == "->") { // trailing return type
            ++k;
            while (k < t.size() && t[k].text != "{" &&
                   t[k].text != ";" && t[k].text != "=")
                ++k;
            continue;
        }
        break;
    }
    if (k >= t.size())
        return {npos, npos};

    if (t[k].text == ":") { // constructor initializer list
        ++k;
        while (k < t.size()) {
            while (k < t.size() && (is_ident_start(t[k].text[0]) ||
                                    t[k].text == "::"))
                ++k;
            if (k < t.size() && t[k].text == "<") {
                const std::size_t c = match_forward(t, k, "<", ">");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            }
            if (k >= t.size())
                return {npos, npos};
            if (t[k].text == "(") {
                const std::size_t c = match_forward(t, k, "(", ")");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            } else if (t[k].text == "{") {
                const std::size_t c = match_forward(t, k, "{", "}");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            } else {
                return {npos, npos};
            }
            if (k < t.size() && t[k].text == ",") {
                ++k;
                continue;
            }
            break;
        }
    }

    if (k >= t.size() || t[k].text != "{")
        return {npos, npos};
    const std::size_t body_end = match_forward(t, k, "{", "}");
    if (body_end == npos)
        return {npos, npos};
    return {k, body_end};
}

void
register_classes(const std::vector<ClassScope> &scopes, Program &prog)
{
    for (const ClassScope &s : scopes) {
        prog.class_names.insert(s.name);
        auto &bases = prog.class_bases[s.name];
        for (const std::string &b : s.bases)
            if (std::find(bases.begin(), bases.end(), b) == bases.end())
                bases.push_back(b);
    }
}

void
finalize_class_hierarchy(Program &prog)
{
    // Transitive closure over the (small) direct-base lists.
    for (const auto &[cls, bases] : prog.class_bases) {
        std::vector<std::string> stack(bases.begin(), bases.end());
        auto &anc = prog.ancestors_of[cls];
        while (!stack.empty()) {
            const std::string b = stack.back();
            stack.pop_back();
            if (!anc.insert(b).second)
                continue;
            const auto it = prog.class_bases.find(b);
            if (it != prog.class_bases.end())
                stack.insert(stack.end(), it->second.begin(),
                             it->second.end());
        }
        for (const std::string &b : anc)
            prog.derived_of[b].insert(cls);
    }
}

void
collect_phase_annotations(const SourceFile &f,
                          const std::vector<ClassScope> &scopes,
                          Program &prog, PhaseTable &table)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const bool is_read = t[i].text == "CATNAP_PHASE_READ";
        const bool is_write = t[i].text == "CATNAP_PHASE_WRITE";
        const bool is_shard = t[i].text == "CATNAP_SHARD_SAFE";
        const bool is_cold = t[i].text == "CATNAP_COLD_PATH";
        if (!is_read && !is_write && !is_shard && !is_cold)
            continue;
        for (std::size_t j = i + 1; j + 1 < t.size() && j < i + 16; ++j) {
            if (t[j + 1].text == "(" && is_ident_start(t[j].text[0]) &&
                non_call_keywords().count(t[j].text) == 0 &&
                t[j].text != "CATNAP_PHASE_READ" &&
                t[j].text != "CATNAP_PHASE_WRITE" &&
                t[j].text != "CATNAP_SHARD_SAFE" &&
                t[j].text != "CATNAP_COLD_PATH") {
                std::string cls;
                if (j >= 2 && t[j - 1].text == "::" &&
                    is_ident_start(t[j - 2].text[0]))
                    cls = t[j - 2].text;
                else
                    cls = enclosing_class(scopes, j);
                if (is_cold) {
                    prog.cold_annots.push_back({t[j].text, cls});
                } else if (is_shard) {
                    prog.shard_annots.push_back({t[j].text, cls});
                } else {
                    (is_read ? table.read_fns : table.write_fns)
                        .insert(t[j].text);
                    prog.annots.push_back(
                        {t[j].text, cls, is_read ? 1 : 2});
                }
                break;
            }
        }
    }
}

void
collect_members(const SourceFile &f,
                const std::vector<ClassScope> &scopes, Program &prog)
{
    const auto &t = f.tokens;
    for (const ClassScope &s : scopes) {
        for (std::size_t i = s.open + 1; i < s.close; ++i) {
            if (!is_member_ident(t[i].text))
                continue;
            // A declaration looks like `<type tokens> foo_ ;` (or with
            // `= init`, `{init}`, or `[N]` after the name) where the
            // token before the name belongs to a type.
            const std::string &nxt = t[i + 1].text;
            if (nxt != ";" && nxt != "=" && nxt != "{" && nxt != "[")
                continue;
            const std::string &prv = t[i - 1].text;
            if (!(is_ident_start(prv[0]) || prv == ">" || prv == "*" ||
                  prv == "&"))
                continue;
            // Back-scan the type tokens to the start of the statement.
            // Reject spans that contain expression tokens — they mean
            // this is a use inside a method body, not a declaration.
            bool has_ptr = false, has_ref = false, owned_ptr = false;
            bool unordered = false, float_typed = false;
            bool reject = false;
            std::string cls;
            for (std::size_t k = i; k-- > s.open + 1;) {
                const std::string &s2 = t[k].text;
                if (s2 == ";" || s2 == "{" || s2 == "}" || s2 == ":" ||
                    s2 == "public" || s2 == "private" ||
                    s2 == "protected")
                    break;
                if (s2 == "(" || s2 == ")" || s2 == "." ||
                    s2 == "->" || s2 == "return" ||
                    assign_ops().count(s2) > 0) {
                    reject = true;
                    break;
                }
                if (s2 == "*")
                    has_ptr = true;
                else if (s2 == "&")
                    has_ref = true;
                else if (s2 == "unique_ptr" || s2 == "shared_ptr")
                    owned_ptr = true;
                else if (s2 == "unordered_map" ||
                         s2 == "unordered_set" ||
                         s2 == "unordered_multimap" ||
                         s2 == "unordered_multiset")
                    unordered = true;
                else if (s2 == "float" || s2 == "double")
                    float_typed = true;
                else if (cls.empty() && is_ident_start(s2[0]) &&
                         prog.class_names.count(s2) > 0)
                    cls = s2; // last class ident wins (innermost type)
            }
            if (reject)
                continue;
            // Only record the *innermost* declaration: nested class
            // scopes are walked too, so skip names whose innermost
            // enclosing class is not this scope.
            if (enclosing_class(scopes, i) != s.name)
                continue;
            MemberDecl d;
            if (owned_ptr)
                d.kind = MemberKind::kOwnedPtr;
            else if (has_ptr || has_ref)
                d.kind = MemberKind::kPeerPtr;
            else
                d.kind = MemberKind::kValue;
            d.cls = cls;
            d.unordered = unordered;
            d.float_typed = float_typed;
            prog.members.emplace(std::make_pair(s.name, t[i].text), d);
        }
    }
}

namespace {

/** What a local name stands for inside one function body. */
struct Alias
{
    enum class Kind : std::uint8_t {
        kMemberRef, ///< `auto &x = foo_[...]`: reference into a member
        kPeer,      ///< `Router *x = ...`: an explicitly-typed peer
        kParamRef,  ///< `auto &x = param...`: reference via a parameter
    };
    Kind kind = Kind::kPeer;
    std::string field; ///< member field key (kMemberRef)
    std::string cls;   ///< peer class (kPeer)
    int param = -1;    ///< parameter index (kParamRef)
    /** An iterator local (`auto it = c.find(...)`). ++/--/reassign
     * move the cursor (a read of the container); only a deref
     * reaches the element. */
    bool iter = false;
};

/** Context a field/call chain currently runs in. */
struct ChainCtx
{
    enum class Kind : std::uint8_t {
        kOwn,        ///< fields of the enclosing class
        kOwnedField, ///< inside an owned member object (collapse key)
        kPeer,       ///< a peer instance
        kParam,      ///< a reference/pointer parameter
        kResult,     ///< result of a call (peer-origin tracks class)
        kDead,       ///< untrackable; record nothing
    };
    Kind kind = Kind::kDead;
    std::string key;  ///< field key so far (kOwn/kOwnedField/kPeer)
    std::string cls;  ///< current object's class, when known
    /** Instance class the chain crossed into (kPeer). Unlike `cls`,
     * this is latched at the crossing and survives descent into the
     * peer's value members, so the recorded edge names the peer
     * instance rather than a sub-object's element class. */
    std::string peer_cls;
    int param = -1;   ///< parameter index (kParam)
    bool peer_origin = false; ///< kResult: producing call was on a peer
    int prev_call = -1;       ///< kResult: producing call index
};

ChainCtx classify_base(const Program &prog, const FunctionDef &d,
                       const std::map<std::string, Alias> &aliases,
                       const std::string &id);

/** Re-encodes a raw argument base identifier into the form the effect
 * pass binds on: "" unknown, "this", "#<idx>" parameter, "@<Cls>"
 * peer instance, or an own/owned member field key. */
std::string
encode_arg_base(const Program &prog, const FunctionDef &d,
                const std::map<std::string, Alias> &aliases,
                const std::string &base)
{
    if (base.empty() || base == "this")
        return base;
    const ChainCtx c = classify_base(prog, d, aliases, base);
    switch (c.kind) {
      case ChainCtx::Kind::kOwn:
      case ChainCtx::Kind::kOwnedField:
        return c.key;
      case ChainCtx::Kind::kPeer:
        return c.cls.empty() ? std::string() : "@" + c.cls;
      case ChainCtx::Kind::kParam:
        return "#" + std::to_string(c.param);
      default:
        return std::string();
    }
}

/// No-such-parameter result of param_index (distinct from any index).
constexpr int kNoParam = -1;

int
param_index(const FunctionDef &d, const std::string &name)
{
    for (std::size_t p = 0; p < d.params.size(); ++p)
        if (d.params[p].name == name)
            return static_cast<int>(p);
    return kNoParam;
}

/** Parses the top-level argument base identifiers of a call whose `(`
 * is at @p open (matching close at @p close). `&x`/`*x` unwrap to x,
 * `std::move(x)` and similar single-arg wrappers look inside, `this`
 * stays "this", anything else (literals, call results, expressions
 * with operators before the base) becomes "". */
std::vector<std::string>
parse_arg_bases(const std::vector<Token> &t, std::size_t open,
                std::size_t close)
{
    std::vector<std::string> bases;
    if (open + 1 >= close)
        return bases; // no arguments
    std::size_t i = open + 1;
    while (i < close) {
        // Find this argument's base.
        std::string base;
        std::size_t j = i;
        while (j < close && (t[j].text == "&" || t[j].text == "*"))
            ++j;
        for (int hops = 0; j < close && hops < 4; ++hops) {
            const std::string &s = t[j].text;
            if (s == "this") {
                base = "this";
                break;
            }
            if (!is_ident_start(s[0]))
                break;
            if (j + 1 < close && t[j + 1].text == "::") {
                j += 2; // qualified name: keep walking
                continue;
            }
            if (j + 1 < close && t[j + 1].text == "(") {
                // Wrapper call: look inside std::move/forward-style
                // single wrappers, otherwise the base is a call result.
                if (s == "move" || s == "forward") {
                    ++j;
                    while (j + 1 < close &&
                           (t[j + 1].text == "&" || t[j + 1].text == "*"))
                        ++j;
                    ++j;
                    continue;
                }
                break;
            }
            base = s;
            break;
        }
        bases.push_back(base);
        // Advance to the next top-level comma.
        int pd = 0, bd = 0, cd = 0, ad = 0;
        while (i < close) {
            const std::string &s = t[i].text;
            if (s == "(")
                ++pd;
            else if (s == ")")
                --pd;
            else if (s == "[")
                ++bd;
            else if (s == "]")
                --bd;
            else if (s == "{")
                ++cd;
            else if (s == "}")
                --cd;
            else if (s == "<")
                ++ad;
            else if (s == ">" && ad > 0)
                --ad;
            else if (s == "," && pd == 0 && bd == 0 && cd == 0 &&
                     ad == 0)
                break;
            ++i;
        }
        if (i >= close)
            break;
        ++i; // past the comma
    }
    return bases;
}

/** Parses the parameter list between @p open and @p close into
 * @p out. Default arguments are stripped; the parameter name is the
 * last identifier of each (truncated) declarator. */
void
parse_params(const std::vector<Token> &t, std::size_t open,
             std::size_t close, const Program &prog,
             std::vector<Param> &out)
{
    std::size_t i = open + 1;
    if (i >= close)
        return;
    if (close == i + 1 && t[i].text == "void")
        return;
    while (i < close) {
        Param p;
        std::string last_ident;
        int pd = 0, bd = 0, cd = 0, ad = 0;
        bool in_default = false;
        while (i < close) {
            const std::string &s = t[i].text;
            if (s == "(")
                ++pd;
            else if (s == ")")
                --pd;
            else if (s == "[")
                ++bd;
            else if (s == "]")
                --bd;
            else if (s == "{")
                ++cd;
            else if (s == "}")
                --cd;
            else if (s == "<")
                ++ad;
            else if (s == ">" && ad > 0)
                --ad;
            else if (s == "," && pd == 0 && bd == 0 && cd == 0 &&
                     ad == 0)
                break;
            if (!in_default) {
                if (s == "=" && pd == 0 && bd == 0 && cd == 0 &&
                    ad == 0) {
                    in_default = true;
                } else if (s == "&" || s == "*") {
                    if (ad == 0)
                        p.by_ref = true;
                } else if (s == "const") {
                    p.is_const = true;
                } else if (is_ident_start(s[0]) && !is_type_noise(s)) {
                    if (!last_ident.empty() &&
                        prog.class_names.count(last_ident) > 0)
                        p.cls = last_ident;
                    last_ident = s;
                }
            }
            ++i;
        }
        if (!last_ident.empty()) {
            if (prog.class_names.count(last_ident) > 0 && p.cls.empty())
                p.cls = last_ident; // unnamed param of class type
            else
                p.name = last_ident;
        }
        out.push_back(std::move(p));
        if (i >= close)
            break;
        ++i; // past the comma
    }
}

/** Classifies the base identifier of a chain in @p d's body. */
ChainCtx
classify_base(const Program &prog, const FunctionDef &d,
              const std::map<std::string, Alias> &aliases,
              const std::string &id)
{
    ChainCtx c;
    if (id == "this") {
        c.kind = ChainCtx::Kind::kOwn;
        c.cls = d.cls;
        return c;
    }
    const auto ai = aliases.find(id);
    if (ai != aliases.end()) {
        const Alias &a = ai->second;
        switch (a.kind) {
          case Alias::Kind::kMemberRef:
            c.kind = ChainCtx::Kind::kOwn;
            c.key = a.field;
            c.cls = a.cls;
            break;
          case Alias::Kind::kPeer:
            c.kind = ChainCtx::Kind::kPeer;
            c.cls = a.cls;
            c.peer_cls = a.cls;
            break;
          case Alias::Kind::kParamRef:
            c.kind = ChainCtx::Kind::kParam;
            c.param = a.param;
            c.cls = a.cls;
            break;
        }
        return c;
    }
    const int pi = param_index(d, id);
    if (pi >= 0) {
        c.kind = ChainCtx::Kind::kParam;
        c.param = pi;
        c.cls = d.params[static_cast<std::size_t>(pi)].cls;
        return c;
    }
    if (is_member_ident(id)) {
        const auto mi = prog.members.find({d.cls, id});
        if (mi != prog.members.end() &&
            mi->second.kind == MemberKind::kPeerPtr) {
            c.kind = ChainCtx::Kind::kPeer;
            c.key = id; // remembered so the deref reads the field
            c.cls = mi->second.cls;
            c.peer_cls = mi->second.cls;
            return c;
        }
        c.kind = mi != prog.members.end() && !mi->second.cls.empty()
                     ? ChainCtx::Kind::kOwnedField
                     : ChainCtx::Kind::kOwn;
        c.key = id;
        if (mi != prog.members.end())
            c.cls = mi->second.cls;
        return c;
    }
    c.kind = ChainCtx::Kind::kDead;
    return c;
}

/** Records one resolved access on the current chain context. */
void
record_access(FunctionDef &d, const ChainCtx &c, bool write, int line)
{
    switch (c.kind) {
      case ChainCtx::Kind::kOwn:
      case ChainCtx::Kind::kOwnedField:
        if (!c.key.empty()) {
            d.accesses.push_back({c.key, write, line});
            if (write)
                d.writes_members = true;
        }
        break;
      case ChainCtx::Kind::kPeer: {
        const std::string &pcls =
            c.peer_cls.empty() ? c.cls : c.peer_cls;
        if (!pcls.empty() && !c.key.empty()) {
            d.peer_accesses.push_back({pcls, c.key, write, line});
            if (write)
                d.writes_members = true;
        }
        break;
      }
      case ChainCtx::Kind::kParam:
        if (c.param >= 0)
            d.param_accesses.push_back({c.param, write, line});
        break;
      case ChainCtx::Kind::kResult:
      case ChainCtx::Kind::kDead:
        break;
    }
}

/** Extends @p c by a plain (non-call) data-member selector @p field:
 * raw-pointer members of a known current class switch the chain into
 * peer context; everything else extends/keeps the collapse key. */
void
follow_field(const Program &prog, ChainCtx &c, const std::string &field)
{
    if (!c.cls.empty()) {
        const auto mi = prog.members.find({c.cls, field});
        if (mi != prog.members.end()) {
            if (mi->second.kind == MemberKind::kPeerPtr &&
                !mi->second.cls.empty()) {
                // Crossing a raw pointer: now on another instance.
                c.kind = ChainCtx::Kind::kPeer;
                c.cls = mi->second.cls;
                c.peer_cls = mi->second.cls;
                c.key.clear();
                return;
            }
            c.cls = mi->second.cls;
        } else {
            c.cls.clear();
        }
    }
    switch (c.kind) {
      case ChainCtx::Kind::kOwn:
      case ChainCtx::Kind::kOwnedField:
      case ChainCtx::Kind::kPeer:
        if (c.key.empty())
            c.key = field;
        else if (c.key.find('.') == npos)
            c.key += "." + field;
        break;
      default:
        break;
    }
}

/**
 * Scans a body range for field accesses and call sites (see the file
 * comment of lint_graph.h for the ownership model). Alias
 * declarations (`auto &x = foo_[...]`, `Router *nbr = ...`, range-for
 * over members) are tracked so writes through them land on the right
 * field or peer.
 */
void
scan_body(const Program &prog, const std::vector<Token> &t,
          std::size_t body_open, std::size_t body_close, FunctionDef &d)
{
    std::map<std::string, Alias> aliases;
    // Token positions that belong to recognised alias declarations:
    // the declared name (followed by `=`/`:`, which would otherwise
    // read as a write to the aliased member) and the RHS base (whose
    // bare-key access would poison the field-precise keys the alias's
    // use sites carry). Pass 2 skips chains starting there.
    std::set<std::size_t> decl_tokens;

    // Pass 1: alias declarations (declarations precede uses, but a
    // dedicated pass keeps the main scan simple).
    for (std::size_t i = body_open + 1; i < body_close; ++i) {
        const std::string &id = t[i].text;
        if (!is_ident_start(id[0]))
            continue;
        // `auto [const] &name = base...` / `for (auto &name : base...)`
        // and by-value iterator locals `auto it = base.find(...)`,
        // whose copies still refer into the container's storage.
        if (id == "auto") {
            std::size_t k = i + 1;
            if (k < body_close && t[k].text == "const")
                ++k;
            bool by_ref = false;
            if (k < body_close &&
                (t[k].text == "&" || t[k].text == "&&")) {
                by_ref = true;
                ++k;
            }
            if (k >= body_close || !is_ident_start(t[k].text[0]))
                continue;
            const std::string name = t[k].text;
            const std::size_t name_idx = k;
            ++k;
            if (k >= body_close ||
                (t[k].text != "=" && t[k].text != ":"))
                continue;
            ++k;
            if (k >= body_close)
                continue;
            bool is_iter = false;
            if (!by_ref) {
                // A plain copy is a snapshot, not an alias — except
                // an iterator, which stays a cursor into the
                // container (`it->second` reaches owned storage).
                static const std::set<std::string> kIterFns = {
                    "find",        "begin",       "end",
                    "rbegin",      "rend",        "cbegin",
                    "cend",        "lower_bound", "upper_bound",
                };
                if (k + 3 >= body_close ||
                    (t[k + 1].text != "." && t[k + 1].text != "->") ||
                    kIterFns.count(t[k + 2].text) == 0 ||
                    t[k + 3].text != "(")
                    continue;
                is_iter = true;
            }
            const ChainCtx base =
                classify_base(prog, d, aliases, t[k].text);
            Alias a;
            a.iter = is_iter;
            switch (base.kind) {
              case ChainCtx::Kind::kOwn:
              case ChainCtx::Kind::kOwnedField:
                if (base.key.empty())
                    continue;
                a.kind = Alias::Kind::kMemberRef;
                a.field = base.key;
                a.cls = base.cls;
                break;
              case ChainCtx::Kind::kPeer:
                a.kind = Alias::Kind::kPeer;
                a.cls = base.cls;
                break;
              case ChainCtx::Kind::kParam:
                a.kind = Alias::Kind::kParamRef;
                a.param = base.param;
                a.cls = base.cls;
                break;
              default:
                continue;
            }
            aliases[name] = a;
            decl_tokens.insert(name_idx);
            decl_tokens.insert(k);
            continue;
        }
        // `std::<container><Cls> [const] & name =|: base` — a
        // reference to container storage; the element class rides
        // along so a nested range-for over it stays owned.
        if (id == "std" && i + 1 < body_close &&
            t[i + 1].text == "::" && i + 2 < body_close &&
            is_ident_start(t[i + 2].text[0]) && i + 3 < body_close &&
            t[i + 3].text == "<") {
            std::string elem;
            int depth = 0;
            std::size_t k = i + 3;
            for (; k < body_close; ++k) {
                const std::string &s2 = t[k].text;
                if (s2 == "<") {
                    ++depth;
                } else if (s2 == ">") {
                    if (--depth == 0)
                        break;
                } else if (s2 == ">>") {
                    depth -= 2;
                    if (depth <= 0)
                        break;
                } else if (s2 == ";" || s2 == "{") {
                    depth = -1;
                    break;
                } else if (is_ident_start(s2[0]) &&
                           prog.class_names.count(s2) > 0) {
                    elem = s2;
                }
            }
            if (depth != 0 || elem.empty() || k + 1 >= body_close)
                continue;
            ++k;
            if (k < body_close && t[k].text == "const")
                ++k;
            if (k >= body_close || t[k].text != "&")
                continue;
            ++k;
            if (k >= body_close || !is_ident_start(t[k].text[0]))
                continue;
            const std::string name = t[k].text;
            const std::size_t name_idx = k;
            ++k;
            if (k >= body_close ||
                (t[k].text != "=" && t[k].text != ":"))
                continue;
            ++k;
            if (k >= body_close || !is_ident_start(t[k].text[0]))
                continue;
            const ChainCtx base =
                classify_base(prog, d, aliases, t[k].text);
            Alias a;
            a.cls = elem;
            if ((base.kind == ChainCtx::Kind::kOwn ||
                 base.kind == ChainCtx::Kind::kOwnedField) &&
                !base.key.empty()) {
                a.kind = Alias::Kind::kMemberRef;
                a.field = base.key;
            } else if (base.kind == ChainCtx::Kind::kParam) {
                a.kind = Alias::Kind::kParamRef;
                a.param = base.param;
            } else {
                a.kind = Alias::Kind::kPeer;
            }
            aliases[name] = a;
            decl_tokens.insert(name_idx);
            decl_tokens.insert(k);
            continue;
        }
        // `Cls [const] *|& name =|:` — an explicitly-typed class
        // local. A reference into *owned* storage of the declared
        // type (range-for over a value container, a member element)
        // stays on this shard; everything else is a peer instance.
        if (prog.class_names.count(id) > 0) {
            std::size_t k = i + 1;
            if (k < body_close && t[k].text == "const")
                ++k;
            if (k >= body_close ||
                (t[k].text != "*" && t[k].text != "&"))
                continue;
            ++k;
            if (k >= body_close || !is_ident_start(t[k].text[0]))
                continue;
            const std::string name = t[k].text;
            const std::size_t name_idx = k;
            ++k;
            if (k >= body_close ||
                (t[k].text != "=" && t[k].text != ":"))
                continue;
            ++k;
            while (k < body_close &&
                   (t[k].text == "&" || t[k].text == "*"))
                ++k;
            Alias a;
            a.kind = Alias::Kind::kPeer;
            a.cls = id;
            if (k < body_close && is_ident_start(t[k].text[0])) {
                const ChainCtx base =
                    classify_base(prog, d, aliases, t[k].text);
                if ((base.kind == ChainCtx::Kind::kOwn ||
                     base.kind == ChainCtx::Kind::kOwnedField) &&
                    !base.key.empty() && base.cls == id) {
                    a.kind = Alias::Kind::kMemberRef;
                    a.field = base.key;
                }
                decl_tokens.insert(k);
            }
            aliases[name] = a;
            decl_tokens.insert(name_idx);
        }
    }

    // Pass 2: chains.
    bool prefix_write = false;
    for (std::size_t i = body_open + 1; i < body_close; ++i) {
        const std::string &id = t[i].text;

        if (id == "++" || id == "--") {
            prefix_write = true;
            continue;
        }
        if (!is_ident_start(id[0])) {
            prefix_write = false;
            continue;
        }
        const bool was_prefix = prefix_write;
        prefix_write = false;

        // Chain bases only: selectors are consumed by the chain walk.
        if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))
            continue;
        if (non_call_keywords().count(id) > 0)
            continue;
        // Alias declarations were consumed by pass 1: the name token
        // (followed by `=`) is not a write, and the RHS base's access
        // is carried field-precisely by the alias's use sites.
        if (decl_tokens.count(i) > 0)
            continue;
        // Iterator cursor moves (`++it`, `it = c.erase(it)`) and
        // comparisons read the container; only a deref (`it->...`)
        // reaches the element and continues as a normal chain.
        {
            const auto ia = aliases.find(id);
            if (ia != aliases.end() && ia->second.iter) {
                const std::string &nxt =
                    i + 1 < body_close ? t[i + 1].text : "";
                if (nxt != "." && nxt != "->" && nxt != "[") {
                    if (ia->second.kind == Alias::Kind::kMemberRef)
                        d.accesses.push_back(
                            {ia->second.field, false, t[i].line});
                    continue;
                }
            }
        }

        ChainCtx chain;
        std::size_t chain_start = i + 1;

        // Bare call base: `name(...)` (with optional `Cls::`).
        if (i + 1 < body_close && t[i + 1].text == "(" &&
            id != "this") {
            CallSite cs;
            cs.name = id;
            cs.line = t[i].line;
            if (i >= 2 && t[i - 1].text == "::" &&
                is_ident_start(t[i - 2].text[0]))
                cs.cls_hint = t[i - 2].text;
            const std::size_t close =
                match_forward(t, i + 1, "(", ")");
            if (close != npos && close < body_close)
                cs.arg_bases = parse_arg_bases(t, i + 1, close);
            // Known-mutating std algorithms: they write through their
            // arguments, which no summary would otherwise see (there
            // is no definition to close over). Without this, a WRITE
            // function whose whole effect is `std::sort(queue_...)`
            // looks effect-pure to L6.
            static const std::set<std::string> kMutFreeFns = {
                "sort",   "stable_sort", "fill",      "fill_n",
                "swap",   "iota",        "shuffle",   "transform",
                "memset", "memcpy",      "memmove",   "partial_sort",
            };
            // Destination-only writers: only the first argument is
            // mutated; the rest are reads (`memcpy(&bits, &v, n)` must
            // not mark `v` written, or every caller passing a member
            // inherits a phantom member write). `transform` writes its
            // output iterator (argument 3 in the unary form).
            static const std::set<std::string> kDstOnlyFns = {
                "memset", "memcpy", "memmove",
            };
            if (kMutFreeFns.count(id) > 0 &&
                (cs.cls_hint.empty() || cs.cls_hint == "std")) {
                for (std::size_t ai = 0; ai < cs.arg_bases.size();
                     ++ai) {
                    const std::string &b = cs.arg_bases[ai];
                    if (b.empty() || b == "this")
                        continue;
                    bool arg_written = true;
                    if (kDstOnlyFns.count(id) > 0)
                        arg_written = ai == 0;
                    else if (id == "transform")
                        arg_written = ai >= 2;
                    ChainCtx ac = classify_base(prog, d, aliases, b);
                    if (ac.kind != ChainCtx::Kind::kDead)
                        record_access(d, ac, arg_written, t[i].line);
                }
            }
            const int bare_idx = static_cast<int>(d.calls.size());
            d.calls.push_back(std::move(cs));
            // `helper(args).method(...)`: keep walking the chain on
            // the call's result so the trailing method call is seen
            // (otherwise `ni(src).offer_packet(p)` contributes no
            // effect and the caller looks effect-pure to L6). The
            // result of a bare (same-instance) call is treated as
            // own-side storage — the accessor idiom returns a
            // reference into owned state — so no peer edge is made.
            if (close == npos || close + 1 >= body_close ||
                (t[close + 1].text != "." && t[close + 1].text != "->"))
                continue;
            chain = ChainCtx{};
            chain.kind = ChainCtx::Kind::kResult;
            chain.prev_call = bare_idx;
            chain_start = close + 1;
        } else {
            // Field/receiver chain.
            chain = classify_base(prog, d, aliases, id);
            if (chain.kind == ChainCtx::Kind::kDead)
                continue;
            // A peer-pointer *member* base: only an actual deref
            // crosses to the peer (and reads the pointer field on the
            // way). A plain use or assignment of the pointer itself
            // is an access to the owner's own field.
            if (chain.kind == ChainCtx::Kind::kPeer &&
                !chain.key.empty()) {
                const bool deref =
                    i + 1 < body_close &&
                    (t[i + 1].text == "->" || t[i + 1].text == "." ||
                     t[i + 1].text == "[");
                if (deref) {
                    d.accesses.push_back({chain.key, false, t[i].line});
                    chain.key.clear();
                } else {
                    const std::string cls = chain.cls;
                    chain = ChainCtx{};
                    chain.kind = ChainCtx::Kind::kOwn;
                    chain.key = id;
                    chain.cls = cls;
                    // classify_base never returns kOwn for a peer
                    // member, so follow_field cannot re-enter here.
                }
            }
            chain_start = i + 1;
        }

        ChainCtx c = chain;
        std::size_t k = chain_start;
        bool chain_ended_in_call = false;
        while (k < body_close) {
            if (t[k].text == "[") {
                const std::size_t cb = match_forward(t, k, "[", "]");
                if (cb == npos || cb >= body_close)
                    break;
                k = cb + 1;
                continue;
            }
            if ((t[k].text != "." && t[k].text != "->") ||
                k + 1 >= body_close ||
                !is_ident_start(t[k + 1].text[0]))
                break;
            const std::string &sel = t[k + 1].text;
            const bool sel_is_call =
                k + 2 < body_close && t[k + 2].text == "(";
            if (!sel_is_call) {
                follow_field(prog, c, sel);
                k += 2;
                continue;
            }
            const std::size_t close =
                match_forward(t, k + 2, "(", ")");
            if (close == npos || close >= body_close)
                break;
            if (mut_methods().count(sel) > 0 &&
                !(c.kind == ChainCtx::Kind::kPeer &&
                  prog.class_names.count(c.cls) > 0)) {
                // Mutating container/smart-ptr method: a write on the
                // current context; the chain ends here. On a *peer of
                // a registered class* the same name (`push`, `clear`)
                // is a user-defined method: fall through and emit a
                // real call site, or the peer write vanishes (the
                // crossing cleared the field key, so record_access
                // would drop it).
                record_access(d, c, true, t[k + 1].line);
                chain_ended_in_call = true;
                break;
            }
            // Method call: emit a receiver-classified call site.
            CallSite cs;
            cs.name = sel;
            cs.via_receiver = true;
            cs.line = t[k + 1].line;
            cs.arg_bases = parse_arg_bases(t, k + 2, close);
            switch (c.kind) {
              case ChainCtx::Kind::kOwn:
                if (c.key.empty()) {
                    cs.recv = Recv::kThis;
                    cs.recv_cls = d.cls;
                } else {
                    cs.recv = Recv::kMemberOwned;
                    cs.recv_field = c.key;
                    cs.recv_cls = c.cls;
                    // Touching the member at all reads the field.
                    d.accesses.push_back({c.key, false, t[k + 1].line});
                }
                break;
              case ChainCtx::Kind::kOwnedField:
                cs.recv = Recv::kMemberOwned;
                cs.recv_field = c.key;
                cs.recv_cls = c.cls;
                d.accesses.push_back({c.key, false, t[k + 1].line});
                break;
              case ChainCtx::Kind::kPeer:
                cs.recv = c.cls.empty() ? Recv::kUnknown : Recv::kMemberPeer;
                cs.recv_cls = c.cls;
                break;
              case ChainCtx::Kind::kParam:
                cs.recv = Recv::kParam;
                cs.recv_param = c.param;
                cs.recv_cls = c.cls;
                break;
              case ChainCtx::Kind::kResult:
                cs.recv = c.peer_origin && c.prev_call >= 0
                              ? Recv::kResultPeer
                              : Recv::kUnknown;
                cs.prev_call = c.prev_call;
                break;
              case ChainCtx::Kind::kDead:
                cs.recv = Recv::kUnknown;
                break;
            }
            const int call_idx = static_cast<int>(d.calls.size());
            d.calls.push_back(std::move(cs));
            // Continue the chain on the call's result.
            ChainCtx rc;
            rc.kind = ChainCtx::Kind::kResult;
            rc.peer_origin = c.kind == ChainCtx::Kind::kPeer ||
                             (c.kind == ChainCtx::Kind::kResult &&
                              c.peer_origin);
            rc.prev_call = call_idx;
            c = rc;
            k = close + 1;
            chain_ended_in_call =
                !(k < body_close &&
                  (t[k].text == "." || t[k].text == "->"));
            if (chain_ended_in_call)
                break;
        }
        if (chain_ended_in_call)
            continue;
        const bool write =
            was_prefix ||
            (k < body_close && assign_ops().count(t[k].text) > 0);
        record_access(d, c, write, t[i].line);
    }

    // Re-encode argument bases now, while the alias map is in scope,
    // so the effect pass can bind callee parameter effects without
    // re-deriving local context.
    for (CallSite &cs : d.calls)
        for (std::string &b : cs.arg_bases)
            b = encode_arg_base(prog, d, aliases, b);
}

/** Extracts the return class, virtual-ness, and qualification span of
 * the definition whose name is at @p name_idx. */
void
parse_decl_head(const std::vector<Token> &t, std::size_t name_idx,
                const Program &prog, FunctionDef &d)
{
    std::size_t start = name_idx;
    if (name_idx >= 2 && t[name_idx - 1].text == "::")
        start = name_idx - 2;
    std::size_t scanned = 0;
    for (std::size_t k = start; k-- > 0 && scanned < 12; ++scanned) {
        const std::string &s = t[k].text;
        if (s == ";" || s == "{" || s == "}" || s == ":" ||
            s == "public" || s == "private" || s == "protected" ||
            s == ")")
            break;
        if (s == "virtual")
            d.is_virtual = true;
        else if (d.ret_cls.empty() && is_ident_start(s[0]) &&
                 !is_type_noise(s) && s != d.name && s != d.cls &&
                 prog.class_names.count(s) > 0)
            d.ret_cls = s;
    }
}

} // namespace

void
collect_defs(int file_idx, const SourceFile &f,
             const std::vector<ClassScope> &scopes, Program &prog)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!is_ident_start(t[i].text[0]))
            continue;
        if (i + 1 >= t.size() || t[i + 1].text != "(")
            continue;
        if (non_call_keywords().count(t[i].text) > 0)
            continue;
        // `obj.name(..)` / `ptr->name(..)` are always calls.
        if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))
            continue;
        const auto [body_open, body_close] = find_body(t, i);
        if (body_open == npos)
            continue;

        FunctionDef d;
        d.name = t[i].text;
        d.file = file_idx;
        d.line = t[i].line;
        d.body_open = body_open;
        d.body_close = body_close;
        if (i >= 2 && t[i - 1].text == "::" &&
            is_ident_start(t[i - 2].text[0]))
            d.cls = t[i - 2].text;
        else
            d.cls = enclosing_class(scopes, i);
        parse_decl_head(t, i, prog, d);
        const std::size_t params_end =
            match_forward(t, i + 1, "(", ")");
        if (params_end != npos)
            parse_params(t, i + 1, params_end, prog, d.params);
        // `override`/`final` after the parameter list also mean the
        // function participates in virtual dispatch.
        for (std::size_t k = params_end + 1;
             k < body_open && k < t.size(); ++k)
            if (t[k].text == "override" || t[k].text == "final")
                d.is_virtual = true;
        scan_body(prog, t, body_open, body_close, d);

        const auto id = static_cast<int>(prog.defs.size());
        prog.defs_by_name[d.name].push_back(id);
        prog.defs_by_cls[{d.cls, d.name}].push_back(id);
        prog.defs.push_back(std::move(d));
        i = body_open; // keep scanning inside for nested definitions
    }
}

int
resolve_phase(const Program &prog, const FunctionDef &d)
{
    // Exact (class, name) match wins; an annotated base declaration
    // covers every override; a class-less annotation (free function,
    // or a declaration whose class the collector could not see) binds
    // by name alone. An annotation on an *unrelated* class's method of
    // the same name must not leak across — `InvariantChecker::report`
    // being WRITE says nothing about `PowerMeter::report`.
    const auto anc = prog.ancestors_of.find(d.cls);
    int name_phase = 0;
    bool name_mixed = false;
    for (const PhaseAnnot &a : prog.annots) {
        if (a.name != d.name)
            continue;
        if (a.cls == d.cls)
            return a.phase;
        if (!a.cls.empty() &&
            (anc == prog.ancestors_of.end() ||
             anc->second.count(a.cls) == 0))
            continue;
        if (name_phase == 0)
            name_phase = a.phase;
        else if (name_phase != a.phase)
            name_mixed = true;
    }
    return name_mixed ? 0 : name_phase;
}

bool
resolve_shard_safe(const Program &prog, const FunctionDef &d)
{
    const auto anc = prog.ancestors_of.find(d.cls);
    for (const ShardAnnot &a : prog.shard_annots) {
        if (a.name != d.name)
            continue;
        if (a.cls == d.cls || a.cls.empty())
            return true;
        // A shard-safe base declaration covers every override.
        if (anc != prog.ancestors_of.end() &&
            anc->second.count(a.cls) > 0)
            return true;
    }
    return false;
}

bool
annot_shard_safe_name(const Program &prog, const std::string &name)
{
    for (const ShardAnnot &a : prog.shard_annots)
        if (a.name == name)
            return true;
    return false;
}

bool
resolve_cold_path(const Program &prog, const FunctionDef &d)
{
    const auto anc = prog.ancestors_of.find(d.cls);
    for (const ShardAnnot &a : prog.cold_annots) {
        if (a.name != d.name)
            continue;
        if (a.cls == d.cls || a.cls.empty())
            return true;
        // A cold base declaration covers every override.
        if (anc != prog.ancestors_of.end() &&
            anc->second.count(a.cls) > 0)
            return true;
    }
    return false;
}

std::vector<int>
resolve_call(const Program &prog, const FunctionDef &caller,
             const CallSite &cs, const std::string &recv_cls)
{
    // Receiver-class-directed resolution: the receiver's class plus
    // its bases (inherited methods) and derived classes (virtual
    // dispatch through a base pointer).
    const std::string &rc =
        !recv_cls.empty() ? recv_cls : cs.recv_cls;
    if (!rc.empty() && prog.class_names.count(rc) > 0) {
        std::vector<int> ids;
        auto add_cls = [&](const std::string &c) {
            const auto it = prog.defs_by_cls.find({c, cs.name});
            if (it != prog.defs_by_cls.end())
                ids.insert(ids.end(), it->second.begin(),
                           it->second.end());
        };
        add_cls(rc);
        const auto anc = prog.ancestors_of.find(rc);
        if (anc != prog.ancestors_of.end())
            for (const std::string &c : anc->second)
                add_cls(c);
        const auto der = prog.derived_of.find(rc);
        if (der != prog.derived_of.end())
            for (const std::string &c : der->second)
                add_cls(c);
        return ids; // known receiver class: never fall back to names
    }
    if (!cs.cls_hint.empty()) {
        const auto it = prog.defs_by_cls.find({cs.cls_hint, cs.name});
        if (it != prog.defs_by_cls.end())
            return it->second;
        if (prog.class_names.count(cs.cls_hint) > 0)
            return {}; // known class, no such member in the input set
        // Namespace qualifier: fall through to name-level lookup.
    } else if (!cs.via_receiver && !caller.cls.empty()) {
        const auto it = prog.defs_by_cls.find({caller.cls, cs.name});
        if (it != prog.defs_by_cls.end())
            return it->second;
    }
    const auto it = prog.defs_by_name.find(cs.name);
    if (it == prog.defs_by_name.end())
        return {};
    if (!cs.via_receiver)
        return it->second;
    std::vector<int> members;
    for (const int id : it->second)
        if (!prog.defs[static_cast<std::size_t>(id)].cls.empty())
            members.push_back(id);
    return members;
}

int
annot_phase_of_name(const Program &prog, const std::string &name)
{
    int phase = 0;
    for (const PhaseAnnot &a : prog.annots) {
        if (a.name != name)
            continue;
        if (phase == 0)
            phase = a.phase;
        else if (phase != a.phase)
            return 0;
    }
    return phase;
}

} // namespace catnap_lint
