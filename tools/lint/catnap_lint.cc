/**
 * @file
 * catnap_lint: simulator-specific static checks for the Catnap codebase
 * (DESIGN.md §9, §11). Self-contained tokenizer-based pass — no
 * compiler front-end required, so it runs anywhere the simulator
 * builds. Five rule families:
 *
 *  L1 determinism — simulation results must be bit-identical across
 *     runs and platforms (the golden-trace tests depend on it), so any
 *     wall-clock, libc RNG, std::random engine, or unordered container
 *     (iteration order is unspecified) in simulator code is flagged.
 *     All randomness must flow through common/rng.h.
 *
 *  L2 two-phase discipline — functions annotated CATNAP_PHASE_READ
 *     (evaluate phase: read committed state, queue effects) must not
 *     call functions annotated CATNAP_PHASE_WRITE (commit/policy phase:
 *     apply effects, advance FSMs); such a call is a same-cycle
 *     read-after-write hazard that makes results depend on component
 *     iteration order. Every `evaluate`/`commit` method declaration
 *     must carry one of the annotations (common/phase.h).
 *
 *  L3 counter safety — Cycle is unsigned 64-bit; narrowing a cycle
 *     expression into a small integral type truncates after ~2^31
 *     cycles, and bare `-1` sentinels mixed into signed/unsigned index
 *     arithmetic compare wrongly. Use named sentinels (kInvalidVc,
 *     kNoSubnet) or std::optional instead.
 *
 *  L4 interprocedural two-phase — L2 only sees a direct READ→WRITE
 *     call. L4 builds a name-resolved call graph over all input files
 *     and flags READ functions that reach a WRITE function
 *     *transitively* through unannotated helpers (READ → helper → …
 *     → WRITE). Direct calls stay L2's job so nothing is reported
 *     twice.
 *
 *  L5 phase coverage — an unannotated member function that writes
 *     member state and is reachable from the tick path (any annotated
 *     function, or any `evaluate`/`commit`) is a hole in the two-phase
 *     audit: L2/L4 cannot classify calls to it. It must be annotated
 *     CATNAP_PHASE_READ (order-independent effect queueing) or
 *     CATNAP_PHASE_WRITE (commits state).
 *
 * Suppress a finding with a trailing comment on the same line, or with
 * a standalone allow comment on the line above:
 *     foo();  // catnap-lint: allow(L1)
 *     // catnap-lint: allow(L3)
 *     bar();
 *
 * Usage:
 *     catnap_lint [--rules L1,L2,L3,L4,L5] [--expect RULE]
 *                 [--sarif PATH] <files-or-dirs>...
 *
 * Directories are walked recursively (sub-directories named `fixtures`
 * are skipped — they hold deliberately-broken lint inputs). With
 * --sarif PATH a SARIF 2.1.0 log is written (even when clean) for
 * GitHub code scanning.
 *
 * Host-side allowlist: files under `src/exec/` implement the batch
 * execution engine, which orchestrates whole simulations from outside
 * the tick loop and never mutates simulation state. For those files the
 * L1 *wall-clock* bans are lifted (job timeouts and exec.* trace
 * timestamps legitimately read the host's monotonic clock) — the RNG
 * and unordered-container bans remain — and their functions are
 * excluded from the L4/L5 tick-path call graph (they are not phase
 * functions; name collisions like `submit`/`execute` must not alias
 * them into it). Simulation determinism is unaffected: host time never
 * flows into results, which tests/test_exec.cc pins bit-exactly.
 *
 * Exit status: 0 clean, 1 violations found, 2 usage/IO error. With
 * --expect RULE the meaning inverts for fixtures: exit 0 iff at least
 * one violation of RULE was found (used by the ctest fixture tests).
 *
 * Known limitations (tokenizer, not a compiler): raw string literals
 * and macro-generated code are not understood; call resolution is
 * name-based with a class qualifier where one is visible, so virtual
 * dispatch and same-named methods of unrelated classes are merged
 * conservatively.
 */
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/sarif.h"

namespace {

struct Token
{
    std::string text;
    int line;
};

struct Violation
{
    std::string file;
    int line;
    std::string rule; // "L1" .. "L5"
    std::string message;
};

struct SourceFile
{
    std::string path;
    std::vector<Token> tokens;
    std::map<int, std::set<std::string>> allowed; // line -> rule ids
};

/** Function names collected from CATNAP_PHASE_* annotations (L2's
 * name-level view; L4/L5 use the class-qualified PhaseAnnot list). */
struct PhaseTable
{
    std::set<std::string> read_fns;
    std::set<std::string> write_fns;
};

/**
 * True for files on the host-side allowlist (see the file comment):
 * the execution engine under src/exec/ runs around the simulation, not
 * inside the tick loop, so the wall-clock bans and the tick-path call
 * graph do not apply to it.
 */
bool
is_host_side(const std::string &path)
{
    return path.find("src/exec/") != std::string::npos;
}

bool
is_ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Records `// catnap-lint: allow(L1,L3)` style suppressions found in
 * @p line_text (searched before comment stripping). A trailing allow
 * suppresses findings on its own line; an allow comment standing alone
 * on a line suppresses findings on the *next* line.
 */
void
collect_allows(const std::string &line_text, int line,
               std::map<int, std::set<std::string>> &allowed)
{
    const std::string marker = "catnap-lint: allow(";
    const auto pos = line_text.find(marker);
    if (pos == std::string::npos)
        return;
    const auto open = pos + marker.size();
    const auto close = line_text.find(')', open);
    if (close == std::string::npos)
        return;

    // Standalone comment line (only whitespace before the `//`)?
    const auto slashes = line_text.rfind("//", pos);
    bool standalone = false;
    if (slashes != std::string::npos) {
        standalone = true;
        for (std::size_t i = 0; i < slashes; ++i) {
            if (!std::isspace(static_cast<unsigned char>(line_text[i]))) {
                standalone = false;
                break;
            }
        }
    }
    const int target = standalone ? line + 1 : line;

    std::string rules = line_text.substr(open, close - open);
    std::string rule;
    std::istringstream rs(rules);
    while (std::getline(rs, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty())
            allowed[target].insert(rule);
    }
}

/**
 * Replaces comments and string/char literal contents with spaces while
 * preserving line structure, then tokenizes. Two-character operators
 * that the rules care about (::, ->, ==, !=, <=, >=, &&, ||, <<, the
 * compound assignments and ++/--) are kept as single tokens. `>>` is
 * deliberately NOT merged so template closers stay matchable.
 */
std::vector<Token>
tokenize(const std::string &text)
{
    std::string clean = text;
    enum class State { kCode, kLine, kBlock, kString, kChar };
    State st = State::kCode;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const char c = clean[i];
        const char n = i + 1 < clean.size() ? clean[i + 1] : '\0';
        switch (st) {
          case State::kCode:
            if (c == '/' && n == '/') {
                st = State::kLine;
                clean[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = State::kBlock;
                clean[i] = ' ';
            } else if (c == '"') {
                st = State::kString;
            } else if (c == '\'') {
                st = State::kChar;
            }
            break;
          case State::kLine:
            if (c == '\n')
                st = State::kCode;
            else
                clean[i] = ' ';
            break;
          case State::kBlock:
            if (c == '*' && n == '/') {
                clean[i] = ' ';
                clean[i + 1] = ' ';
                ++i;
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          case State::kString:
          case State::kChar: {
            const char quote = st == State::kString ? '"' : '\'';
            if (c == '\\') {
                clean[i] = ' ';
                if (n != '\n' && i + 1 < clean.size())
                    clean[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          }
        }
    }

    static const std::set<std::string> kTwoCharOps = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    };

    std::vector<Token> tokens;
    int line = 1;
    for (std::size_t i = 0; i < clean.size();) {
        const char c = clean[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (is_ident_start(c)) {
            std::size_t j = i;
            while (j < clean.size() && is_ident_char(clean[j]))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < clean.size() &&
                   (is_ident_char(clean[j]) || clean[j] == '.'))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (i + 1 < clean.size() &&
            kTwoCharOps.count(clean.substr(i, 2)) > 0) {
            tokens.push_back({clean.substr(i, 2), line});
            i += 2;
            continue;
        }
        tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return tokens;
}

bool
load_file(const std::string &path, SourceFile &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    out.path = path;
    std::istringstream ls(text);
    std::string line_text;
    int line = 1;
    while (std::getline(ls, line_text)) {
        collect_allows(line_text, line, out.allowed);
        ++line;
    }
    out.tokens = tokenize(text);
    return true;
}

bool
suppressed(const SourceFile &f, int line, const std::string &rule)
{
    const auto it = f.allowed.find(line);
    return it != f.allowed.end() && it->second.count(rule) > 0;
}

void
add_violation(std::vector<Violation> &out, const SourceFile &f, int line,
              const std::string &rule, const std::string &msg)
{
    if (!suppressed(f, line, rule))
        out.push_back({f.path, line, rule, msg});
}

/** Index of the matching closer for the opener at @p open, or npos. */
std::size_t
match_forward(const std::vector<Token> &t, std::size_t open,
              const std::string &opener, const std::string &closer)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].text == opener)
            ++depth;
        else if (t[i].text == closer && --depth == 0)
            return i;
    }
    return std::string::npos;
}

// --------------------------------------------------------------------
// Structural view: class scopes, function definitions, call sites
// (shared by L4 and L5; L1-L3 stay purely token-local).
// --------------------------------------------------------------------

/** One `class`/`struct` body brace range. */
struct ClassScope
{
    std::size_t open;  ///< index of the body `{`
    std::size_t close; ///< index of the matching `}`
    std::string name;
};

/** One call site inside a function body. */
struct CallSite
{
    std::string name;
    std::string cls_hint;      ///< explicit `Cls::` qualifier, if any
    bool via_receiver = false; ///< `obj.name(..)` / `ptr->name(..)`
    int line = 0;
};

/** One function definition (a name with a parsed body). */
struct FunctionDef
{
    std::string name;
    std::string cls; ///< enclosing/qualifying class; "" for free fns
    int file = -1;   ///< index into the sources vector
    int line = 0;
    int phase = 0; ///< 0 none, 1 READ, 2 WRITE (resolved from annots)
    bool writes_members = false;
    std::vector<CallSite> calls;
};

/** One CATNAP_PHASE_* marker with its class context. */
struct PhaseAnnot
{
    std::string name;
    std::string cls;
    int phase; ///< 1 READ, 2 WRITE
};

/** Whole-input call-graph data. */
struct Program
{
    std::vector<FunctionDef> defs;
    std::vector<PhaseAnnot> annots;
    std::map<std::string, std::vector<int>> defs_by_name;
    std::map<std::pair<std::string, std::string>, std::vector<int>>
        defs_by_cls; ///< (cls, name) -> def indices
    std::set<std::string> class_names;
};

/** Tokens that look like `name(` but are never calls or definitions. */
const std::set<std::string> &
non_call_keywords()
{
    static const std::set<std::string> kw = {
        "if",       "for",      "while",    "switch",     "catch",
        "return",   "sizeof",   "alignof",  "decltype",   "typeid",
        "noexcept", "new",      "delete",   "throw",      "operator",
        "constexpr", "alignas", "defined",  "static_assert",
        "assert",
    };
    return kw;
}

/** Collects the `class`/`struct` body brace ranges of @p t. */
std::vector<ClassScope>
collect_class_scopes(const std::vector<Token> &t)
{
    constexpr auto npos = std::string::npos;
    std::vector<ClassScope> scopes;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].text == "template" && i + 1 < t.size() &&
            t[i + 1].text == "<") {
            const std::size_t close = match_forward(t, i + 1, "<", ">");
            if (close != npos)
                i = close;
            continue;
        }
        if (t[i].text != "class" && t[i].text != "struct")
            continue;
        if (i > 0 &&
            (t[i - 1].text == "enum" || t[i - 1].text == "friend"))
            continue;
        if (i + 1 >= t.size() || !is_ident_start(t[i + 1].text[0]))
            continue;
        const std::string name = t[i + 1].text;
        // Walk the head (base list etc.) to the body `{`; a `;` is a
        // forward declaration, a `(` an elaborated type in a decl.
        std::size_t k = i + 2;
        while (k < t.size() && t[k].text != "{" && t[k].text != ";" &&
               t[k].text != "(")
            ++k;
        if (k >= t.size() || t[k].text != "{")
            continue;
        const std::size_t close = match_forward(t, k, "{", "}");
        if (close == npos)
            continue;
        scopes.push_back({k, close, name});
    }
    return scopes;
}

/** Name of the innermost class body containing token @p idx, or "". */
std::string
enclosing_class(const std::vector<ClassScope> &scopes, std::size_t idx)
{
    std::string best;
    std::size_t best_span = std::string::npos;
    for (const ClassScope &s : scopes) {
        if (idx > s.open && idx < s.close &&
            s.close - s.open < best_span) {
            best = s.name;
            best_span = s.close - s.open;
        }
    }
    return best;
}

/**
 * Finds the body of the function definition whose name token is at
 * @p name_idx; returns {body_open, body_close} brace indices or npos.
 * Handles cv/ref/noexcept/override/final qualifiers, trailing return
 * types, and constructor initializer lists (paren and brace form);
 * rejects declarations, `= default`, `= delete`, and pure virtuals.
 */
std::pair<std::size_t, std::size_t>
find_body(const std::vector<Token> &t, std::size_t name_idx)
{
    constexpr auto npos = std::string::npos;
    if (name_idx + 1 >= t.size() || t[name_idx + 1].text != "(")
        return {npos, npos};
    const std::size_t params_end =
        match_forward(t, name_idx + 1, "(", ")");
    if (params_end == npos)
        return {npos, npos};

    std::size_t k = params_end + 1;
    while (k < t.size()) {
        const std::string &s = t[k].text;
        if (s == "const" || s == "override" || s == "final" ||
            s == "&" || s == "&&") {
            ++k;
            continue;
        }
        if (s == "noexcept") {
            ++k;
            if (k < t.size() && t[k].text == "(") {
                const std::size_t c = match_forward(t, k, "(", ")");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            }
            continue;
        }
        if (s == "->") { // trailing return type
            ++k;
            while (k < t.size() && t[k].text != "{" &&
                   t[k].text != ";" && t[k].text != "=")
                ++k;
            continue;
        }
        break;
    }
    if (k >= t.size())
        return {npos, npos};

    if (t[k].text == ":") { // constructor initializer list
        ++k;
        while (k < t.size()) {
            while (k < t.size() && (is_ident_start(t[k].text[0]) ||
                                    t[k].text == "::"))
                ++k;
            if (k < t.size() && t[k].text == "<") {
                const std::size_t c = match_forward(t, k, "<", ">");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            }
            if (k >= t.size())
                return {npos, npos};
            if (t[k].text == "(") {
                const std::size_t c = match_forward(t, k, "(", ")");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            } else if (t[k].text == "{") {
                const std::size_t c = match_forward(t, k, "{", "}");
                if (c == npos)
                    return {npos, npos};
                k = c + 1;
            } else {
                return {npos, npos};
            }
            if (k < t.size() && t[k].text == ",") {
                ++k;
                continue;
            }
            break;
        }
    }

    if (k >= t.size() || t[k].text != "{")
        return {npos, npos};
    const std::size_t body_end = match_forward(t, k, "{", "}");
    if (body_end == npos)
        return {npos, npos};
    return {k, body_end};
}

/** True for a member-variable-looking identifier (`foo_` style). */
bool
is_member_ident(const std::string &s)
{
    return s.size() > 1 && s.back() == '_' && is_ident_start(s[0]);
}

/**
 * Scans a body range for member writes and call sites. A member write
 * is a `foo_`-style identifier — possibly through `[...]`/`.x`/`->x`
 * chains — hit by an assignment, compound assignment, ++/--, or a
 * mutating container method.
 */
void
scan_body(const std::vector<Token> &t, std::size_t body_open,
          std::size_t body_close, FunctionDef &d)
{
    constexpr auto npos = std::string::npos;
    static const std::set<std::string> kAssignOps = {
        "=",  "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "++", "--",
    };
    static const std::set<std::string> kMutMethods = {
        "push_back", "pop_back",  "clear",        "resize",
        "assign",    "insert",    "erase",        "emplace_back",
        "emplace",   "reserve",   "fill",         "push",
        "pop",       "push_front", "pop_front",   "reset",
    };

    for (std::size_t i = body_open + 1; i < body_close; ++i) {
        const std::string &id = t[i].text;

        // Prefix increment/decrement of a member.
        if ((id == "++" || id == "--") && i + 1 < body_close &&
            is_member_ident(t[i + 1].text)) {
            d.writes_members = true;
            continue;
        }

        if (!is_ident_start(id[0]))
            continue;

        // Call site?
        if (i + 1 < body_close && t[i + 1].text == "(" &&
            non_call_keywords().count(id) == 0) {
            CallSite cs;
            cs.name = id;
            cs.line = t[i].line;
            if (i >= 2 && t[i - 1].text == "::" &&
                is_ident_start(t[i - 2].text[0]))
                cs.cls_hint = t[i - 2].text;
            else if (i >= 1 &&
                     (t[i - 1].text == "." || t[i - 1].text == "->"))
                cs.via_receiver = true;
            d.calls.push_back(std::move(cs));
        }

        // Member write?
        if (!is_member_ident(id))
            continue;
        std::size_t k = i + 1;
        bool wrote = false;
        while (k < body_close) {
            if (t[k].text == "[") {
                const std::size_t c = match_forward(t, k, "[", "]");
                if (c == npos || c >= body_close)
                    break;
                k = c + 1;
            } else if ((t[k].text == "." || t[k].text == "->") &&
                       k + 1 < body_close &&
                       is_ident_start(t[k + 1].text[0])) {
                if (k + 2 < body_close && t[k + 2].text == "(") {
                    wrote = kMutMethods.count(t[k + 1].text) > 0;
                    k = body_close; // method call ends the chain
                    break;
                }
                k += 2;
            } else {
                break;
            }
        }
        if (wrote || (k < body_close && kAssignOps.count(t[k].text) > 0))
            d.writes_members = true;
    }
}

/**
 * Collects class-qualified CATNAP_PHASE_* annotations: the identifier
 * immediately preceding the next '(' after the marker, with either its
 * explicit `Cls::` qualifier or the enclosing class scope. Also feeds
 * L2's name-level PhaseTable.
 */
void
collect_phase_annotations(const SourceFile &f,
                          const std::vector<ClassScope> &scopes,
                          std::vector<PhaseAnnot> &annots,
                          PhaseTable &table)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const bool is_read = t[i].text == "CATNAP_PHASE_READ";
        const bool is_write = t[i].text == "CATNAP_PHASE_WRITE";
        if (!is_read && !is_write)
            continue;
        for (std::size_t j = i + 1; j + 1 < t.size() && j < i + 16; ++j) {
            if (t[j + 1].text == "(" && is_ident_start(t[j].text[0]) &&
                non_call_keywords().count(t[j].text) == 0) {
                PhaseAnnot a;
                a.name = t[j].text;
                a.phase = is_read ? 1 : 2;
                if (j >= 2 && t[j - 1].text == "::" &&
                    is_ident_start(t[j - 2].text[0]))
                    a.cls = t[j - 2].text;
                else
                    a.cls = enclosing_class(scopes, j);
                (is_read ? table.read_fns : table.write_fns)
                    .insert(a.name);
                annots.push_back(std::move(a));
                break;
            }
        }
    }
}

/** Collects every function definition (with body) in @p f. */
void
collect_defs(int file_idx, const SourceFile &f,
             const std::vector<ClassScope> &scopes, Program &prog)
{
    constexpr auto npos = std::string::npos;
    const auto &t = f.tokens;
    for (const ClassScope &s : scopes)
        prog.class_names.insert(s.name);

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!is_ident_start(t[i].text[0]))
            continue;
        if (i + 1 >= t.size() || t[i + 1].text != "(")
            continue;
        if (non_call_keywords().count(t[i].text) > 0)
            continue;
        // `obj.name(..)` / `ptr->name(..)` are always calls.
        if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))
            continue;
        const auto [body_open, body_close] = find_body(t, i);
        if (body_open == npos)
            continue;

        FunctionDef d;
        d.name = t[i].text;
        d.file = file_idx;
        d.line = t[i].line;
        if (i >= 2 && t[i - 1].text == "::" &&
            is_ident_start(t[i - 2].text[0]))
            d.cls = t[i - 2].text;
        else
            d.cls = enclosing_class(scopes, i);
        scan_body(t, body_open, body_close, d);

        const auto id = static_cast<int>(prog.defs.size());
        prog.defs_by_name[d.name].push_back(id);
        prog.defs_by_cls[{d.cls, d.name}].push_back(id);
        prog.defs.push_back(std::move(d));
        i = body_open; // keep scanning inside for nested definitions
    }
}

/**
 * Resolves a definition's phase from the annotation list: an exact
 * (class, name) annotation wins; otherwise a name-level annotation
 * applies only when every annotation of that name agrees.
 */
int
resolve_phase(const Program &prog, const FunctionDef &d)
{
    int name_phase = 0;
    bool name_mixed = false;
    for (const PhaseAnnot &a : prog.annots) {
        if (a.name != d.name)
            continue;
        if (a.cls == d.cls)
            return a.phase;
        if (name_phase == 0)
            name_phase = a.phase;
        else if (name_phase != a.phase)
            name_mixed = true;
    }
    return name_mixed ? 0 : name_phase;
}

/**
 * Resolves a call site to candidate definitions. Preference order:
 * explicit `Cls::` qualifier; the caller's own class for bare calls;
 * any member definition for receiver calls; any definition by name
 * otherwise (namespace qualifiers fall through to name level).
 */
std::vector<int>
resolve_call(const Program &prog, const FunctionDef &caller,
             const CallSite &cs)
{
    if (!cs.cls_hint.empty()) {
        const auto it = prog.defs_by_cls.find({cs.cls_hint, cs.name});
        if (it != prog.defs_by_cls.end())
            return it->second;
        if (prog.class_names.count(cs.cls_hint) > 0)
            return {}; // known class, no such member in the input set
        // Namespace qualifier: fall through to name-level lookup.
    } else if (!cs.via_receiver && !caller.cls.empty()) {
        const auto it = prog.defs_by_cls.find({caller.cls, cs.name});
        if (it != prog.defs_by_cls.end())
            return it->second;
    }
    const auto it = prog.defs_by_name.find(cs.name);
    if (it == prog.defs_by_name.end())
        return {};
    if (!cs.via_receiver)
        return it->second;
    std::vector<int> members;
    for (const int id : it->second)
        if (!prog.defs[static_cast<std::size_t>(id)].cls.empty())
            members.push_back(id);
    return members;
}

/** Phase of a call by name alone (annotation-level; for calls with no
 * definition in the input set). 0 when unknown or mixed. */
int
annot_phase_of_name(const Program &prog, const std::string &name)
{
    int phase = 0;
    for (const PhaseAnnot &a : prog.annots) {
        if (a.name != name)
            continue;
        if (phase == 0)
            phase = a.phase;
        else if (phase != a.phase)
            return 0;
    }
    return phase;
}

// --------------------------------------------------------------------
// L1: determinism
// --------------------------------------------------------------------

void
check_l1(const SourceFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kBannedRngIdents = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random",
        "random_shuffle", "random_device", "mt19937", "mt19937_64",
        "default_random_engine", "minstd_rand", "minstd_rand0", "knuth_b",
        "ranlux24", "ranlux48",
    };
    static const std::set<std::string> kBannedClockIdents = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime",
    };
    static const std::set<std::string> kBannedCalls = {"time", "clock"};
    // Host-side files may read the host clock (timeouts, exec.* trace
    // timestamps); the RNG and unordered-container bans still apply.
    const bool clocks_allowed = is_host_side(f.path);
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };

    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &id = t[i].text;
        if (!is_ident_start(id[0]))
            continue;
        if (kBannedRngIdents.count(id) > 0 ||
            (!clocks_allowed && kBannedClockIdents.count(id) > 0)) {
            add_violation(out, f, t[i].line, "L1",
                          "nondeterministic source '" + id +
                              "': all randomness/time must flow through"
                              " common/rng.h and the Cycle clock");
        } else if (!clocks_allowed && kBannedCalls.count(id) > 0 &&
                   i + 1 < t.size() &&
                   t[i + 1].text == "(" &&
                   (i == 0 || (t[i - 1].text != "." &&
                               t[i - 1].text != "->" &&
                               t[i - 1].text != "::"))) {
            add_violation(out, f, t[i].line, "L1",
                          "wall-clock call '" + id +
                              "()': simulation time is the Cycle"
                              " counter, not host time");
        } else if (kUnordered.count(id) > 0) {
            add_violation(
                out, f, t[i].line, "L1",
                "unordered container '" + id +
                    "': iteration order is unspecified and leaks"
                    " nondeterminism into simulation state/events; use"
                    " std::map, std::vector, or suppress with"
                    " // catnap-lint: allow(L1) if provably unordered");
        }
    }
}

// --------------------------------------------------------------------
// L2: two-phase discipline (direct calls)
// --------------------------------------------------------------------

void
check_l2(const SourceFile &f, const PhaseTable &table,
         std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    constexpr auto npos = std::string::npos;

    // Rule a: every evaluate/commit declaration carries an annotation.
    for (std::size_t i = 1; i < t.size(); ++i) {
        if ((t[i].text != "evaluate" && t[i].text != "commit") ||
            i + 1 >= t.size() || t[i + 1].text != "(")
            continue;
        if (t[i - 1].text != "void")
            continue; // call or qualified definition, not a declaration
        const bool annotated =
            i >= 2 && (t[i - 2].text == "CATNAP_PHASE_READ" ||
                       t[i - 2].text == "CATNAP_PHASE_WRITE");
        if (!annotated) {
            add_violation(out, f, t[i].line, "L2",
                          "phase method '" + t[i].text +
                              "' lacks a CATNAP_PHASE_READ/WRITE"
                              " annotation (common/phase.h)");
        }
    }

    // Rule b: read-phase function bodies never call write-phase
    // functions (same-cycle read-after-write hazard).
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (table.read_fns.count(t[i].text) == 0)
            continue;
        // A definition is either qualified (Class::name) or an inline
        // body directly after the annotated declaration.
        const bool qualified = i >= 1 && t[i - 1].text == "::";
        const auto [body_open, body_close] = find_body(t, i);
        if (body_open == npos)
            continue;
        if (!qualified && i >= 1 && t[i - 1].text != "void" &&
            !is_ident_start(t[i - 1].text[0]))
            continue; // e.g. a call used as an expression statement
        for (std::size_t k = body_open + 1; k < body_close; ++k) {
            if (table.write_fns.count(t[k].text) == 0 ||
                k + 1 >= t.size() || t[k + 1].text != "(")
                continue;
            add_violation(out, f, t[k].line, "L2",
                          "read-phase function '" + t[i].text +
                              "' calls write-phase function '" +
                              t[k].text +
                              "': same-cycle read-after-write hazard"
                              " (two-phase discipline)");
        }
        i = body_close;
    }
}

// --------------------------------------------------------------------
// L3: counter safety
// --------------------------------------------------------------------

/** True for identifiers that (by convention) hold Cycle values. */
bool
is_cycleish(const std::string &raw)
{
    std::string id = raw;
    while (!id.empty() && id.back() == '_')
        id.pop_back();
    static const std::set<std::string> kExact = {
        "now",  "ready",       "wake_done", "sleep_start",
        "head_since", "created", "injected",  "cycle", "cycles",
    };
    if (kExact.count(id) > 0)
        return true;
    auto ends_with = [&id](const char *suffix) {
        const std::string s(suffix);
        return id.size() > s.size() &&
               id.compare(id.size() - s.size(), s.size(), s) == 0;
    };
    return ends_with("_cycle") || ends_with("_cycles") ||
           ends_with("_done") || ends_with("_since");
}

void
check_l3(const SourceFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kNarrowTypes = {
        "int",     "short",   "unsigned", "char",     "int8_t",
        "int16_t", "int32_t", "uint8_t",  "uint16_t", "uint32_t",
    };
    const auto &t = f.tokens;
    constexpr auto npos = std::string::npos;

    for (std::size_t i = 0; i < t.size(); ++i) {
        // Rule a: static_cast<small-int>(cycle expression).
        if (t[i].text == "static_cast" && i + 1 < t.size() &&
            t[i + 1].text == "<") {
            const std::size_t close = match_forward(t, i + 1, "<", ">");
            if (close == npos || close + 1 >= t.size() ||
                t[close + 1].text != "(")
                continue;
            // The cast's target type is narrow iff its last identifier
            // names a sub-64-bit integral type.
            std::string last_type_ident;
            for (std::size_t k = i + 2; k < close; ++k)
                if (is_ident_start(t[k].text[0]))
                    last_type_ident = t[k].text;
            if (kNarrowTypes.count(last_type_ident) == 0)
                continue;
            const std::size_t expr_end =
                match_forward(t, close + 1, "(", ")");
            if (expr_end == npos)
                continue;
            for (std::size_t k = close + 2; k < expr_end; ++k) {
                if (is_ident_start(t[k].text[0]) &&
                    is_cycleish(t[k].text)) {
                    add_violation(
                        out, f, t[k].line, "L3",
                        "narrowing cast of cycle expression '" +
                            t[k].text + "' to " + last_type_ident +
                            ": Cycle is 64-bit and truncates after"
                            " ~2^31 cycles");
                    break;
                }
            }
        }
        // Rule b: bare -1 sentinel in returns/comparisons.
        if (t[i].text == "-" && i + 1 < t.size() &&
            t[i + 1].text == "1" && i >= 1) {
            const std::string &prev = t[i - 1].text;
            if (prev == "return" || prev == "==" || prev == "!=") {
                add_violation(
                    out, f, t[i].line, "L3",
                    "bare -1 sentinel: use a named constant"
                    " (kInvalidVc, kNoSubnet, kInvalidNode) or"
                    " std::optional so signed/unsigned index mixing"
                    " cannot occur");
            }
        }
    }
}

// --------------------------------------------------------------------
// L4: interprocedural two-phase (READ must not transitively reach
// WRITE through unannotated helpers)
// --------------------------------------------------------------------

/** Memoised "reaches a WRITE through phase-none defs" computation. */
struct ReachWrite
{
    enum State : std::uint8_t { kUnvisited, kInProgress, kNo, kYes };
    State state = kUnvisited;
    std::string leaf;         ///< name of the WRITE finally reached
    std::string via;          ///< next hop's display name
};

bool
def_reaches_write(const Program &prog, int di,
                  std::vector<ReachWrite> &memo)
{
    auto &m = memo[static_cast<std::size_t>(di)];
    if (m.state == ReachWrite::kYes)
        return true;
    if (m.state == ReachWrite::kNo || m.state == ReachWrite::kInProgress)
        return false; // cycles cannot create new write reachability
    m.state = ReachWrite::kInProgress;

    const FunctionDef &d = prog.defs[static_cast<std::size_t>(di)];
    for (const CallSite &cs : d.calls) {
        const std::vector<int> targets = resolve_call(prog, d, cs);
        bool any_def_write = false;
        for (const int ti : targets) {
            if (prog.defs[static_cast<std::size_t>(ti)].phase == 2) {
                any_def_write = true;
                break;
            }
        }
        if (any_def_write ||
            (targets.empty() &&
             annot_phase_of_name(prog, cs.name) == 2)) {
            m.state = ReachWrite::kYes;
            m.leaf = cs.name;
            m.via.clear();
            return true;
        }
        for (const int ti : targets) {
            const FunctionDef &td =
                prog.defs[static_cast<std::size_t>(ti)];
            if (td.phase != 0)
                continue; // READ targets are their own L4 roots
            if (def_reaches_write(prog, ti, memo)) {
                m.state = ReachWrite::kYes;
                m.leaf = memo[static_cast<std::size_t>(ti)].leaf;
                m.via = (td.cls.empty() ? td.name
                                        : td.cls + "::" + td.name);
                return true;
            }
        }
    }
    m.state = ReachWrite::kNo;
    return false;
}

void
check_l4(const Program &prog, const std::vector<SourceFile> &sources,
         std::vector<Violation> &out)
{
    std::vector<ReachWrite> memo(prog.defs.size());
    for (const FunctionDef &d : prog.defs) {
        if (d.phase != 1)
            continue; // only READ roots
        for (const CallSite &cs : d.calls) {
            for (const int ti : resolve_call(prog, d, cs)) {
                const FunctionDef &td =
                    prog.defs[static_cast<std::size_t>(ti)];
                if (td.phase != 0)
                    continue; // direct READ->WRITE is L2's report
                if (!def_reaches_write(prog, ti, memo))
                    continue;
                const auto &m = memo[static_cast<std::size_t>(ti)];
                std::string chain = cs.name;
                if (!m.via.empty())
                    chain += "' -> '" + m.via;
                add_violation(
                    out, sources[static_cast<std::size_t>(d.file)],
                    cs.line, "L4",
                    "read-phase function '" +
                        (d.cls.empty() ? d.name
                                       : d.cls + "::" + d.name) +
                        "' transitively reaches write-phase function '" +
                        m.leaf + "' via unannotated helper '" + chain +
                        "': same-cycle read-after-write hazard"
                        " (interprocedural two-phase)");
                break; // one report per call site is enough
            }
        }
    }
}

// --------------------------------------------------------------------
// L5: phase coverage (unannotated member-state writers on the tick
// path need an annotation)
// --------------------------------------------------------------------

void
check_l5(const Program &prog, const std::vector<SourceFile> &sources,
         std::vector<Violation> &out)
{
    // Roots: every phase-annotated definition plus every evaluate /
    // commit (the tick entry points L2 rule a already polices).
    std::vector<int> worklist;
    std::vector<bool> reachable(prog.defs.size(), false);
    for (std::size_t i = 0; i < prog.defs.size(); ++i) {
        const FunctionDef &d = prog.defs[i];
        if (d.phase != 0 || d.name == "evaluate" ||
            d.name == "commit") {
            reachable[i] = true;
            worklist.push_back(static_cast<int>(i));
        }
    }
    while (!worklist.empty()) {
        const int di = worklist.back();
        worklist.pop_back();
        const FunctionDef &d = prog.defs[static_cast<std::size_t>(di)];
        for (const CallSite &cs : d.calls) {
            for (const int ti : resolve_call(prog, d, cs)) {
                if (!reachable[static_cast<std::size_t>(ti)]) {
                    reachable[static_cast<std::size_t>(ti)] = true;
                    worklist.push_back(ti);
                }
            }
        }
    }

    for (std::size_t i = 0; i < prog.defs.size(); ++i) {
        const FunctionDef &d = prog.defs[i];
        if (!reachable[i] || d.phase != 0 || d.cls.empty() ||
            !d.writes_members)
            continue;
        if (d.name == "evaluate" || d.name == "commit")
            continue; // L2 rule a reports missing annotations there
        if (d.name == d.cls)
            continue; // constructors initialise, they don't tick
        add_violation(
            out, sources[static_cast<std::size_t>(d.file)], d.line,
            "L5",
            "member function '" + d.cls + "::" + d.name +
                "' writes member state and is reachable from the"
                " evaluate/commit tick path but has no"
                " CATNAP_PHASE_READ/WRITE annotation (common/phase.h)");
    }
}

// --------------------------------------------------------------------

void
collect_files(const std::string &arg, std::vector<std::string> &files)
{
    namespace fs = std::filesystem;
    if (fs::is_directory(arg)) {
        std::vector<std::string> found;
        for (auto it = fs::recursive_directory_iterator(arg);
             it != fs::recursive_directory_iterator(); ++it) {
            // Fixture directories hold deliberately-broken inputs.
            if (it->is_directory() &&
                it->path().filename() == "fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                found.push_back(it->path().string());
        }
        // Deterministic report order regardless of directory walk order.
        std::sort(found.begin(), found.end());
        files.insert(files.end(), found.begin(), found.end());
    } else {
        files.push_back(arg);
    }
}

void
write_lint_sarif(const std::string &path,
                 const std::vector<Violation> &violations)
{
    static const std::vector<catnap_tools::SarifRule> kRules = {
        {"L1", "Determinism",
         "no wall clocks, libc/std RNG, or unordered containers in"
         " simulator code"},
        {"L2", "TwoPhaseDirect",
         "read-phase functions never directly call write-phase"
         " functions; evaluate/commit carry phase annotations"},
        {"L3", "CounterSafety",
         "no narrowing casts of Cycle expressions or bare -1"
         " sentinels"},
        {"L4", "TwoPhaseInterprocedural",
         "read-phase functions never transitively reach write-phase"
         " functions through unannotated helpers"},
        {"L5", "PhaseCoverage",
         "member-state writers reachable from the tick path carry a"
         " phase annotation"},
    };
    std::vector<catnap_tools::SarifResult> results;
    for (const Violation &v : violations) {
        catnap_tools::SarifResult r;
        r.rule_id = v.rule;
        r.level = "error";
        r.message = v.message;
        r.uri = v.file;
        r.line = v.line;
        results.push_back(std::move(r));
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "catnap_lint: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    catnap_tools::write_sarif(os, "catnap_lint", "2.0.0", kRules,
                              results);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: catnap_lint [--rules L1,L2,L3,L4,L5] [--expect RULE]"
        " [--sarif PATH] <files-or-dirs>...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::set<std::string> rules = {"L1", "L2", "L3", "L4", "L5"};
    std::string expect;
    std::string sarif_path;
    std::vector<std::string> files;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--rules" && a + 1 < argc) {
            rules.clear();
            std::istringstream rs(argv[++a]);
            std::string r;
            while (std::getline(rs, r, ','))
                rules.insert(r);
        } else if (arg == "--expect" && a + 1 < argc) {
            expect = argv[++a];
        } else if (arg == "--sarif" && a + 1 < argc) {
            sarif_path = argv[++a];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            collect_files(arg, files);
        }
    }
    if (files.empty())
        return usage();

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const auto &path : files) {
        SourceFile f;
        if (!load_file(path, f)) {
            std::fprintf(stderr, "catnap_lint: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        sources.push_back(std::move(f));
    }

    // The annotation table and call graph span all inputs so .cc
    // definitions see the markers declared in headers.
    PhaseTable table;
    Program prog;
    std::vector<std::vector<ClassScope>> scopes;
    scopes.reserve(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
        scopes.push_back(collect_class_scopes(sources[i].tokens));
        collect_phase_annotations(sources[i], scopes[i], prog.annots,
                                  table);
    }
    const bool need_graph = rules.count("L4") || rules.count("L5");
    if (need_graph) {
        for (std::size_t i = 0; i < sources.size(); ++i) {
            // Host-side files are outside the tick-path call graph.
            if (is_host_side(sources[i].path))
                continue;
            collect_defs(static_cast<int>(i), sources[i], scopes[i],
                         prog);
        }
        for (FunctionDef &d : prog.defs)
            d.phase = resolve_phase(prog, d);
    }

    std::vector<Violation> violations;
    for (const auto &f : sources) {
        if (rules.count("L1"))
            check_l1(f, violations);
        if (rules.count("L2"))
            check_l2(f, table, violations);
        if (rules.count("L3"))
            check_l3(f, violations);
    }
    if (rules.count("L4"))
        check_l4(prog, sources, violations);
    if (rules.count("L5"))
        check_l5(prog, sources, violations);

    // Deterministic order and no duplicates (multiple L4 roots can
    // converge on the same call site).
    const auto key = [](const Violation &v) {
        return std::tie(v.file, v.line, v.rule, v.message);
    };
    std::sort(violations.begin(), violations.end(),
              [&key](const Violation &a, const Violation &b) {
                  return key(a) < key(b);
              });
    violations.erase(
        std::unique(violations.begin(), violations.end(),
                    [&key](const Violation &a, const Violation &b) {
                        return key(a) == key(b);
                    }),
        violations.end());

    for (const auto &v : violations) {
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    }

    if (!sarif_path.empty())
        write_lint_sarif(sarif_path, violations);

    if (!expect.empty()) {
        const bool hit =
            std::any_of(violations.begin(), violations.end(),
                        [&expect](const Violation &v) {
                            return v.rule == expect;
                        });
        std::printf("catnap_lint: expected %s violation %s\n",
                    expect.c_str(), hit ? "found" : "NOT found");
        return hit ? 0 : 1;
    }

    if (!violations.empty()) {
        std::printf("catnap_lint: %zu violation(s) in %zu file(s)\n",
                    violations.size(), files.size());
        return 1;
    }
    return 0;
}
