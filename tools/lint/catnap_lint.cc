/**
 * @file
 * catnap_lint v4 — driver. The analysis itself lives in the library
 * next to this file:
 *
 *   lint_source.{h,cc}    tokenization, suppressions, file walking
 *   lint_graph.{h,cc}     class scopes, members, defs, call sites
 *   lint_effects.{h,cc}   field-level effect inference (closure)
 *   lint_rules.{h,cc}     L1-L7 rule implementations
 *   lint_manifest.{h,cc}  L8 effects manifest (emit + baseline diff)
 *   lint_cost.{h,cc}      L9 hot-path purity, L10 hot-path manifest
 *   lint_hazard.{h,cc}    L11 determinism hazards
 *
 * The driver parses flags, runs the pipeline (tokenize -> call graph
 * -> effects -> rules), reports violations, and optionally emits SARIF
 * and the effects/hot-path manifests. Exit codes: 0 clean, 1
 * violations found, 2 usage or IO error (including a blown
 * --budget-ms). `--expect RULE` inverts: exit 0 iff at least one
 * violation of RULE was found (fixture tests). `--list-rules` and
 * `--version` print and exit 0.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/sarif.h"
#include "lint_cost.h"
#include "lint_effects.h"
#include "lint_graph.h"
#include "lint_hazard.h"
#include "lint_manifest.h"
#include "lint_rules.h"
#include "lint_source.h"

namespace {

using namespace catnap_lint;

constexpr const char *kVersion = "4.0.0";

const std::vector<catnap_tools::SarifRule> &
rule_table()
{
    static const std::vector<catnap_tools::SarifRule> kRules = {
        {"L1", "Determinism",
         "no wall clocks, libc/std RNG, or unordered containers in"
         " simulator code"},
        {"L2", "TwoPhaseDirect",
         "read-phase functions never directly call write-phase"
         " functions; evaluate/commit carry phase annotations"},
        {"L3", "CounterSafety",
         "no narrowing casts of Cycle expressions or bare -1"
         " sentinels"},
        {"L4", "TwoPhaseInterprocedural",
         "read-phase functions never transitively reach write-phase"
         " functions through unannotated helpers"},
        {"L5", "PhaseCoverage",
         "member-state writers reachable from the tick path carry a"
         " phase annotation"},
        {"L6", "AnnotationDrift",
         "inferred transitive effects match the CATNAP_PHASE_*"
         " annotation: READ functions do not commit peer-visible"
         " state, WRITE functions are not effect-pure"},
        {"L7", "CrossComponentEffects",
         "tick-path functions do not mutate state of other component"
         " instances outside CATNAP_SHARD_SAFE crossings"},
        {"L8", "EffectsManifest",
         "the inferred per-class effect contract matches the"
         " checked-in effects manifest"},
        {"L9", "HotPathPurity",
         "no dynamic allocation, lock acquisition, I/O, or exception"
         " throws in the tick closure (CATNAP_COLD_PATH opts slow"
         " paths out)"},
        {"L10", "HotPathCostManifest",
         "the per-method hot-path cost profile (indirection, virtual"
         " dispatch, bytes touched) matches the checked-in hot-path"
         " manifest"},
        {"L11", "DeterminismHazard",
         "no unordered-container iteration, pointer-keyed/ordered"
         " pointers, address-dependent values, or order-dependent"
         " float folds in evaluate-phase code"},
    };
    return kRules;
}

void
write_lint_sarif(const std::string &path,
                 const std::vector<Violation> &violations)
{
    std::vector<catnap_tools::SarifResult> results;
    for (const Violation &v : violations) {
        catnap_tools::SarifResult r;
        r.rule_id = v.rule;
        r.level = "error";
        r.message = v.message;
        r.uri = v.file;
        r.line = v.line;
        results.push_back(std::move(r));
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "catnap_lint: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    catnap_tools::write_sarif(os, "catnap_lint", kVersion,
                              rule_table(), results);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: catnap_lint [--rules L1,...,L11] [--expect RULE]"
        " [--sarif PATH]\n"
        "                   [--effects-out PATH]"
        " [--effects-baseline PATH]\n"
        "                   [--hotpath-out PATH]"
        " [--hotpath-baseline PATH]\n"
        "                   [--timing] [--budget-ms N]"
        " [--list-rules] [--version]\n"
        "                   <files-or-dirs>...\n");
    return 2;
}

/** Milliseconds elapsed since @p t0, as a double for printing. */
double
ms_since(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::set<std::string> rules = {"L1", "L2", "L3", "L4", "L5", "L6",
                                   "L7", "L8", "L9", "L10", "L11"};
    std::string expect;
    std::string sarif_path;
    std::string effects_out;
    std::string effects_baseline;
    std::string hotpath_out;
    std::string hotpath_baseline;
    bool timing = false;
    long budget_ms = 0;
    std::vector<std::string> files;
    std::set<std::string> explicit_files;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--rules" && a + 1 < argc) {
            rules.clear();
            std::istringstream rs(argv[++a]);
            std::string r;
            while (std::getline(rs, r, ','))
                rules.insert(r);
        } else if (arg == "--expect" && a + 1 < argc) {
            expect = argv[++a];
        } else if (arg == "--sarif" && a + 1 < argc) {
            sarif_path = argv[++a];
        } else if (arg == "--effects-out" && a + 1 < argc) {
            effects_out = argv[++a];
        } else if (arg == "--effects-baseline" && a + 1 < argc) {
            effects_baseline = argv[++a];
        } else if (arg == "--hotpath-out" && a + 1 < argc) {
            hotpath_out = argv[++a];
        } else if (arg == "--hotpath-baseline" && a + 1 < argc) {
            hotpath_baseline = argv[++a];
        } else if (arg == "--list-rules") {
            for (const auto &r : rule_table())
                std::printf("%-4s %-24s %s\n", r.id.c_str(),
                            r.name.c_str(), r.short_desc.c_str());
            return 0;
        } else if (arg == "--version") {
            std::printf("catnap_lint %s\n", kVersion);
            return 0;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--budget-ms" && a + 1 < argc) {
            budget_ms = std::strtol(argv[++a], nullptr, 10);
            if (budget_ms <= 0)
                return usage();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            if (!std::filesystem::is_directory(arg))
                explicit_files.insert(arg);
            collect_files(arg, files);
        }
    }
    if (files.empty())
        return usage();

    const auto t_start = std::chrono::steady_clock::now();

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const auto &path : files) {
        SourceFile f;
        if (!load_file(path, f)) {
            std::fprintf(stderr, "catnap_lint: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        f.explicit_input = explicit_files.count(path) > 0;
        sources.push_back(std::move(f));
    }
    const double ms_tokenize = ms_since(t_start);

    const bool need_hotpath = rules.count("L10") ||
                              !hotpath_out.empty() ||
                              !hotpath_baseline.empty();
    const bool need_graph = rules.count("L4") || rules.count("L5") ||
                            rules.count("L6") || rules.count("L7") ||
                            rules.count("L8") || rules.count("L9") ||
                            rules.count("L11") || need_hotpath ||
                            !effects_out.empty() ||
                            !effects_baseline.empty();
    const bool need_effects = rules.count("L6") || rules.count("L7") ||
                              rules.count("L8") ||
                              rules.count("L11") || need_hotpath ||
                              !effects_out.empty() ||
                              !effects_baseline.empty();

    // The annotation table, class hierarchy, and call graph span all
    // inputs so .cc definitions see the markers and member tables
    // declared in headers.
    const auto t_graph = std::chrono::steady_clock::now();
    PhaseTable table;
    Program prog;
    std::vector<std::vector<ClassScope>> scopes;
    scopes.reserve(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
        scopes.push_back(collect_class_scopes(sources[i].tokens));
        collect_phase_annotations(sources[i], scopes[i], prog, table);
        register_classes(scopes[i], prog);
    }
    if (need_graph) {
        finalize_class_hierarchy(prog);
        for (std::size_t i = 0; i < sources.size(); ++i) {
            // Host-side files are outside the tick-path call graph.
            if (is_host_side(sources[i].path))
                continue;
            collect_members(sources[i], scopes[i], prog);
        }
        for (std::size_t i = 0; i < sources.size(); ++i) {
            if (is_host_side(sources[i].path))
                continue;
            collect_defs(static_cast<int>(i), sources[i], scopes[i],
                         prog);
        }
        for (FunctionDef &d : prog.defs) {
            d.phase = resolve_phase(prog, d);
            d.shard_safe = resolve_shard_safe(prog, d);
            d.cold_path = resolve_cold_path(prog, d);
        }
    }
    const double ms_graph = ms_since(t_graph);

    const auto t_effects = std::chrono::steady_clock::now();
    Effects fx;
    if (need_effects)
        fx = infer_effects(prog, sources);
    const double ms_effects = ms_since(t_effects);

    const auto t_rules = std::chrono::steady_clock::now();
    std::vector<Violation> violations;
    for (const auto &f : sources) {
        if (rules.count("L1"))
            check_l1(f, violations);
        if (rules.count("L2"))
            check_l2(f, table, violations);
        if (rules.count("L3"))
            check_l3(f, violations);
    }
    if (rules.count("L4"))
        check_l4(prog, sources, violations);
    if (rules.count("L5"))
        check_l5(prog, sources, violations);
    if (rules.count("L6"))
        check_l6(prog, fx, sources, violations);
    if (rules.count("L7"))
        check_l7(prog, fx, sources, violations);

    std::vector<char> hot;
    if (rules.count("L9") || need_hotpath)
        hot = compute_hot_set(prog);
    if (rules.count("L9"))
        check_l9(prog, hot, sources, violations);
    if (rules.count("L11"))
        check_l11(prog, fx, sources, violations);

    std::string hotpath;
    if (need_hotpath)
        hotpath = build_hotpath_manifest(prog, fx, hot, sources);
    if (!hotpath_out.empty() &&
        !write_effects_manifest(hotpath_out, hotpath)) {
        std::fprintf(stderr,
                     "catnap_lint: FAILED to write hot-path manifest"
                     " %s\n",
                     hotpath_out.c_str());
        return 2;
    }
    if (!hotpath_baseline.empty() && rules.count("L10"))
        check_l10_baseline(hotpath_baseline, hotpath, violations);

    std::string manifest;
    if (need_effects &&
        (!effects_out.empty() || !effects_baseline.empty()))
        manifest = build_effects_manifest(prog, fx, sources);
    if (!effects_out.empty() &&
        !write_effects_manifest(effects_out, manifest)) {
        std::fprintf(stderr,
                     "catnap_lint: FAILED to write effects manifest"
                     " %s\n",
                     effects_out.c_str());
        return 2;
    }
    if (!effects_baseline.empty() && rules.count("L8"))
        check_l8_baseline(effects_baseline, manifest, violations);

    finalize_violations(violations);
    const double ms_rules = ms_since(t_rules);

    for (const auto &v : violations) {
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    }

    if (!sarif_path.empty())
        write_lint_sarif(sarif_path, violations);

    const double ms_total = ms_since(t_start);
    if (timing) {
        // stderr so stdout stays deterministic for the fixture tests.
        std::fprintf(stderr,
                     "catnap_lint: timing tokenize=%.1fms"
                     " call-graph=%.1fms effects=%.1fms rules=%.1fms"
                     " total=%.1fms (%zu files, %zu defs)\n",
                     ms_tokenize, ms_graph, ms_effects, ms_rules,
                     ms_total, sources.size(), prog.defs.size());
    }
    if (budget_ms > 0 && ms_total > static_cast<double>(budget_ms)) {
        std::fprintf(stderr,
                     "catnap_lint: budget exceeded: %.1fms >"
                     " %ldms\n",
                     ms_total, budget_ms);
        return 2;
    }

    if (!expect.empty()) {
        const bool hit =
            std::any_of(violations.begin(), violations.end(),
                        [&expect](const Violation &v) {
                            return v.rule == expect;
                        });
        std::printf("catnap_lint: expected %s violation %s\n",
                    expect.c_str(), hit ? "found" : "NOT found");
        return hit ? 0 : 1;
    }

    if (!violations.empty()) {
        std::printf("catnap_lint: %zu violation(s) in %zu file(s)\n",
                    violations.size(), files.size());
        return 1;
    }
    return 0;
}
