/**
 * @file
 * catnap_lint: simulator-specific static checks for the Catnap codebase
 * (DESIGN.md §9). Self-contained tokenizer-based pass — no compiler
 * front-end required, so it runs anywhere the simulator builds. Three
 * rule families:
 *
 *  L1 determinism — simulation results must be bit-identical across
 *     runs and platforms (the golden-trace tests depend on it), so any
 *     wall-clock, libc RNG, std::random engine, or unordered container
 *     (iteration order is unspecified) in simulator code is flagged.
 *     All randomness must flow through common/rng.h.
 *
 *  L2 two-phase discipline — functions annotated CATNAP_PHASE_READ
 *     (evaluate phase: read committed state, queue effects) must not
 *     call functions annotated CATNAP_PHASE_WRITE (commit/policy phase:
 *     apply effects, advance FSMs); such a call is a same-cycle
 *     read-after-write hazard that makes results depend on component
 *     iteration order. Every `evaluate`/`commit` method declaration
 *     must carry one of the annotations (common/phase.h).
 *
 *  L3 counter safety — Cycle is unsigned 64-bit; narrowing a cycle
 *     expression into a small integral type truncates after ~2^31
 *     cycles, and bare `-1` sentinels mixed into signed/unsigned index
 *     arithmetic compare wrongly. Use named sentinels (kInvalidVc,
 *     kNoSubnet) or std::optional instead.
 *
 * Suppress a finding with a trailing comment on the same line:
 *     foo();  // catnap-lint: allow(L1)
 *
 * Usage:
 *     catnap_lint [--rules L1,L2,L3] [--expect RULE] <files-or-dirs>...
 *
 * Exit status: 0 clean, 1 violations found, 2 usage/IO error. With
 * --expect RULE the meaning inverts for fixtures: exit 0 iff at least
 * one violation of RULE was found (used by the ctest fixture tests).
 *
 * Known limitations (tokenizer, not a compiler): raw string literals
 * and macro-generated code are not understood; L2 matches functions by
 * unqualified name.
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Token
{
    std::string text;
    int line;
};

struct Violation
{
    std::string file;
    int line;
    std::string rule; // "L1", "L2", "L3"
    std::string message;
};

struct SourceFile
{
    std::string path;
    std::vector<Token> tokens;
    std::map<int, std::set<std::string>> allowed; // line -> rule ids
};

/** Function names collected from CATNAP_PHASE_* annotations. */
struct PhaseTable
{
    std::set<std::string> read_fns;
    std::set<std::string> write_fns;
};

bool
is_ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Records `// catnap-lint: allow(L1,L3)` style suppressions found in
 * @p line_text (searched before comment stripping).
 */
void
collect_allows(const std::string &line_text, int line,
               std::map<int, std::set<std::string>> &allowed)
{
    const std::string marker = "catnap-lint: allow(";
    const auto pos = line_text.find(marker);
    if (pos == std::string::npos)
        return;
    const auto open = pos + marker.size();
    const auto close = line_text.find(')', open);
    if (close == std::string::npos)
        return;
    std::string rules = line_text.substr(open, close - open);
    std::string rule;
    std::istringstream rs(rules);
    while (std::getline(rs, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty())
            allowed[line].insert(rule);
    }
}

/**
 * Replaces comments and string/char literal contents with spaces while
 * preserving line structure, then tokenizes. Two-character operators
 * that the rules care about (::, ->, ==, !=, <=, >=, &&, ||, <<) are
 * kept as single tokens.
 */
std::vector<Token>
tokenize(const std::string &text)
{
    std::string clean = text;
    enum class State { kCode, kLine, kBlock, kString, kChar };
    State st = State::kCode;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const char c = clean[i];
        const char n = i + 1 < clean.size() ? clean[i + 1] : '\0';
        switch (st) {
          case State::kCode:
            if (c == '/' && n == '/') {
                st = State::kLine;
                clean[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = State::kBlock;
                clean[i] = ' ';
            } else if (c == '"') {
                st = State::kString;
            } else if (c == '\'') {
                st = State::kChar;
            }
            break;
          case State::kLine:
            if (c == '\n')
                st = State::kCode;
            else
                clean[i] = ' ';
            break;
          case State::kBlock:
            if (c == '*' && n == '/') {
                clean[i] = ' ';
                clean[i + 1] = ' ';
                ++i;
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          case State::kString:
          case State::kChar: {
            const char quote = st == State::kString ? '"' : '\'';
            if (c == '\\') {
                clean[i] = ' ';
                if (n != '\n' && i + 1 < clean.size())
                    clean[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                st = State::kCode;
            } else if (c != '\n') {
                clean[i] = ' ';
            }
            break;
          }
        }
    }

    static const std::set<std::string> kTwoCharOps = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<",
    };

    std::vector<Token> tokens;
    int line = 1;
    for (std::size_t i = 0; i < clean.size();) {
        const char c = clean[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (is_ident_start(c)) {
            std::size_t j = i;
            while (j < clean.size() && is_ident_char(clean[j]))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < clean.size() &&
                   (is_ident_char(clean[j]) || clean[j] == '.'))
                ++j;
            tokens.push_back({clean.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (i + 1 < clean.size() &&
            kTwoCharOps.count(clean.substr(i, 2)) > 0) {
            tokens.push_back({clean.substr(i, 2), line});
            i += 2;
            continue;
        }
        tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return tokens;
}

bool
load_file(const std::string &path, SourceFile &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    out.path = path;
    std::istringstream ls(text);
    std::string line_text;
    int line = 1;
    while (std::getline(ls, line_text)) {
        collect_allows(line_text, line, out.allowed);
        ++line;
    }
    out.tokens = tokenize(text);
    return true;
}

bool
suppressed(const SourceFile &f, int line, const std::string &rule)
{
    const auto it = f.allowed.find(line);
    return it != f.allowed.end() && it->second.count(rule) > 0;
}

void
add_violation(std::vector<Violation> &out, const SourceFile &f, int line,
              const std::string &rule, const std::string &msg)
{
    if (!suppressed(f, line, rule))
        out.push_back({f.path, line, rule, msg});
}

/** Index of the matching closer for the opener at @p open, or npos. */
std::size_t
match_forward(const std::vector<Token> &t, std::size_t open,
              const std::string &opener, const std::string &closer)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].text == opener)
            ++depth;
        else if (t[i].text == closer && --depth == 0)
            return i;
    }
    return std::string::npos;
}

// --------------------------------------------------------------------
// L1: determinism
// --------------------------------------------------------------------

void
check_l1(const SourceFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kBannedIdents = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random",
        "random_shuffle", "random_device", "mt19937", "mt19937_64",
        "default_random_engine", "minstd_rand", "minstd_rand0", "knuth_b",
        "ranlux24", "ranlux48", "system_clock", "steady_clock",
        "high_resolution_clock", "gettimeofday", "clock_gettime",
    };
    static const std::set<std::string> kBannedCalls = {"time", "clock"};
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };

    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &id = t[i].text;
        if (!is_ident_start(id[0]))
            continue;
        if (kBannedIdents.count(id) > 0) {
            add_violation(out, f, t[i].line, "L1",
                          "nondeterministic source '" + id +
                              "': all randomness/time must flow through"
                              " common/rng.h and the Cycle clock");
        } else if (kBannedCalls.count(id) > 0 && i + 1 < t.size() &&
                   t[i + 1].text == "(" &&
                   (i == 0 || (t[i - 1].text != "." &&
                               t[i - 1].text != "->" &&
                               t[i - 1].text != "::"))) {
            add_violation(out, f, t[i].line, "L1",
                          "wall-clock call '" + id +
                              "()': simulation time is the Cycle"
                              " counter, not host time");
        } else if (kUnordered.count(id) > 0) {
            add_violation(
                out, f, t[i].line, "L1",
                "unordered container '" + id +
                    "': iteration order is unspecified and leaks"
                    " nondeterminism into simulation state/events; use"
                    " std::map, std::vector, or suppress with"
                    " // catnap-lint: allow(L1) if provably unordered");
        }
    }
}

// --------------------------------------------------------------------
// L2: two-phase discipline
// --------------------------------------------------------------------

/**
 * Collects the function names declared directly after a
 * CATNAP_PHASE_READ / CATNAP_PHASE_WRITE marker: the identifier
 * immediately preceding the next '('.
 */
void
collect_phase_annotations(const SourceFile &f, PhaseTable &table)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const bool is_read = t[i].text == "CATNAP_PHASE_READ";
        const bool is_write = t[i].text == "CATNAP_PHASE_WRITE";
        if (!is_read && !is_write)
            continue;
        for (std::size_t j = i + 1; j + 1 < t.size() && j < i + 16; ++j) {
            if (t[j + 1].text == "(" && is_ident_start(t[j].text[0])) {
                (is_read ? table.read_fns : table.write_fns)
                    .insert(t[j].text);
                break;
            }
        }
    }
}

/**
 * Finds the body of the function definition whose name token is at
 * @p name_idx; returns {body_open, body_close} brace indices or npos.
 */
std::pair<std::size_t, std::size_t>
find_body(const std::vector<Token> &t, std::size_t name_idx)
{
    constexpr auto npos = std::string::npos;
    if (name_idx + 1 >= t.size() || t[name_idx + 1].text != "(")
        return {npos, npos};
    const std::size_t params_end = match_forward(t, name_idx + 1, "(", ")");
    if (params_end == npos)
        return {npos, npos};
    // Skip qualifiers between the parameter list and the body.
    std::size_t k = params_end + 1;
    while (k < t.size() &&
           (t[k].text == "const" || t[k].text == "noexcept" ||
            t[k].text == "override" || t[k].text == "final"))
        ++k;
    if (k >= t.size() || t[k].text != "{")
        return {npos, npos};
    const std::size_t body_end = match_forward(t, k, "{", "}");
    if (body_end == npos)
        return {npos, npos};
    return {k, body_end};
}

void
check_l2(const SourceFile &f, const PhaseTable &table,
         std::vector<Violation> &out)
{
    const auto &t = f.tokens;
    constexpr auto npos = std::string::npos;

    // Rule a: every evaluate/commit declaration carries an annotation.
    for (std::size_t i = 1; i < t.size(); ++i) {
        if ((t[i].text != "evaluate" && t[i].text != "commit") ||
            i + 1 >= t.size() || t[i + 1].text != "(")
            continue;
        if (t[i - 1].text != "void")
            continue; // call or qualified definition, not a declaration
        const bool annotated =
            i >= 2 && (t[i - 2].text == "CATNAP_PHASE_READ" ||
                       t[i - 2].text == "CATNAP_PHASE_WRITE");
        if (!annotated) {
            add_violation(out, f, t[i].line, "L2",
                          "phase method '" + t[i].text +
                              "' lacks a CATNAP_PHASE_READ/WRITE"
                              " annotation (common/phase.h)");
        }
    }

    // Rule b: read-phase function bodies never call write-phase
    // functions (same-cycle read-after-write hazard).
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (table.read_fns.count(t[i].text) == 0)
            continue;
        // A definition is either qualified (Class::name) or an inline
        // body directly after the annotated declaration.
        const bool qualified = i >= 1 && t[i - 1].text == "::";
        const auto [body_open, body_close] = find_body(t, i);
        if (body_open == npos)
            continue;
        if (!qualified && i >= 1 && t[i - 1].text != "void" &&
            !is_ident_start(t[i - 1].text[0]))
            continue; // e.g. a call used as an expression statement
        for (std::size_t k = body_open + 1; k < body_close; ++k) {
            if (table.write_fns.count(t[k].text) == 0 ||
                k + 1 >= t.size() || t[k + 1].text != "(")
                continue;
            add_violation(out, f, t[k].line, "L2",
                          "read-phase function '" + t[i].text +
                              "' calls write-phase function '" +
                              t[k].text +
                              "': same-cycle read-after-write hazard"
                              " (two-phase discipline)");
        }
        i = body_close;
    }
}

// --------------------------------------------------------------------
// L3: counter safety
// --------------------------------------------------------------------

/** True for identifiers that (by convention) hold Cycle values. */
bool
is_cycleish(const std::string &raw)
{
    std::string id = raw;
    while (!id.empty() && id.back() == '_')
        id.pop_back();
    static const std::set<std::string> kExact = {
        "now",  "ready",       "wake_done", "sleep_start",
        "head_since", "created", "injected",  "cycle", "cycles",
    };
    if (kExact.count(id) > 0)
        return true;
    auto ends_with = [&id](const char *suffix) {
        const std::string s(suffix);
        return id.size() > s.size() &&
               id.compare(id.size() - s.size(), s.size(), s) == 0;
    };
    return ends_with("_cycle") || ends_with("_cycles") ||
           ends_with("_done") || ends_with("_since");
}

void
check_l3(const SourceFile &f, std::vector<Violation> &out)
{
    static const std::set<std::string> kNarrowTypes = {
        "int",     "short",   "unsigned", "char",     "int8_t",
        "int16_t", "int32_t", "uint8_t",  "uint16_t", "uint32_t",
    };
    const auto &t = f.tokens;
    constexpr auto npos = std::string::npos;

    for (std::size_t i = 0; i < t.size(); ++i) {
        // Rule a: static_cast<small-int>(cycle expression).
        if (t[i].text == "static_cast" && i + 1 < t.size() &&
            t[i + 1].text == "<") {
            const std::size_t close = match_forward(t, i + 1, "<", ">");
            if (close == npos || close + 1 >= t.size() ||
                t[close + 1].text != "(")
                continue;
            // The cast's target type is narrow iff its last identifier
            // names a sub-64-bit integral type.
            std::string last_type_ident;
            for (std::size_t k = i + 2; k < close; ++k)
                if (is_ident_start(t[k].text[0]))
                    last_type_ident = t[k].text;
            if (kNarrowTypes.count(last_type_ident) == 0)
                continue;
            const std::size_t expr_end =
                match_forward(t, close + 1, "(", ")");
            if (expr_end == npos)
                continue;
            for (std::size_t k = close + 2; k < expr_end; ++k) {
                if (is_ident_start(t[k].text[0]) &&
                    is_cycleish(t[k].text)) {
                    add_violation(
                        out, f, t[k].line, "L3",
                        "narrowing cast of cycle expression '" +
                            t[k].text + "' to " + last_type_ident +
                            ": Cycle is 64-bit and truncates after"
                            " ~2^31 cycles");
                    break;
                }
            }
        }
        // Rule b: bare -1 sentinel in returns/comparisons.
        if (t[i].text == "-" && i + 1 < t.size() &&
            t[i + 1].text == "1" && i >= 1) {
            const std::string &prev = t[i - 1].text;
            if (prev == "return" || prev == "==" || prev == "!=") {
                add_violation(
                    out, f, t[i].line, "L3",
                    "bare -1 sentinel: use a named constant"
                    " (kInvalidVc, kNoSubnet, kInvalidNode) or"
                    " std::optional so signed/unsigned index mixing"
                    " cannot occur");
            }
        }
    }
}

// --------------------------------------------------------------------

void
collect_files(const std::string &arg, std::vector<std::string> &files)
{
    namespace fs = std::filesystem;
    if (fs::is_directory(arg)) {
        std::vector<std::string> found;
        for (const auto &entry : fs::recursive_directory_iterator(arg)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                found.push_back(entry.path().string());
        }
        // Deterministic report order regardless of directory walk order.
        std::sort(found.begin(), found.end());
        files.insert(files.end(), found.begin(), found.end());
    } else {
        files.push_back(arg);
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: catnap_lint [--rules L1,L2,L3] [--expect RULE]"
        " <files-or-dirs>...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::set<std::string> rules = {"L1", "L2", "L3"};
    std::string expect;
    std::vector<std::string> files;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--rules" && a + 1 < argc) {
            rules.clear();
            std::istringstream rs(argv[++a]);
            std::string r;
            while (std::getline(rs, r, ','))
                rules.insert(r);
        } else if (arg == "--expect" && a + 1 < argc) {
            expect = argv[++a];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            collect_files(arg, files);
        }
    }
    if (files.empty())
        return usage();

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const auto &path : files) {
        SourceFile f;
        if (!load_file(path, f)) {
            std::fprintf(stderr, "catnap_lint: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        sources.push_back(std::move(f));
    }

    // The annotation table spans all inputs so .cc definitions see the
    // markers declared in headers.
    PhaseTable table;
    for (const auto &f : sources)
        collect_phase_annotations(f, table);

    std::vector<Violation> violations;
    for (const auto &f : sources) {
        if (rules.count("L1"))
            check_l1(f, violations);
        if (rules.count("L2"))
            check_l2(f, table, violations);
        if (rules.count("L3"))
            check_l3(f, violations);
    }

    for (const auto &v : violations) {
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    }

    if (!expect.empty()) {
        const bool hit =
            std::any_of(violations.begin(), violations.end(),
                        [&expect](const Violation &v) {
                            return v.rule == expect;
                        });
        std::printf("catnap_lint: expected %s violation %s\n",
                    expect.c_str(), hit ? "found" : "NOT found");
        return hit ? 0 : 1;
    }

    if (!violations.empty()) {
        std::printf("catnap_lint: %zu violation(s) in %zu file(s)\n",
                    violations.size(), files.size());
        return 1;
    }
    return 0;
}
