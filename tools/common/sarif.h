/**
 * @file
 * Minimal deterministic SARIF 2.1.0 writer shared by the repo's static
 * tools (tools/lint/catnap_lint and tools/model/catnap_model).
 *
 * Emits exactly the subset GitHub code scanning consumes: one run with
 * tool.driver.{name,version,rules[]} and results[] carrying ruleId,
 * level, message.text and one physicalLocation each. Output depends
 * only on the inputs (rules and results are written in the order
 * given), so golden-file tests can diff it byte-for-byte.
 */
#ifndef CATNAP_TOOLS_COMMON_SARIF_H
#define CATNAP_TOOLS_COMMON_SARIF_H

#include <ostream>
#include <string>
#include <vector>

namespace catnap_tools {

/** One reporting rule descriptor (tool.driver.rules[] entry). */
struct SarifRule
{
    std::string id;         ///< stable rule id, e.g. "L4" or "P3"
    std::string name;       ///< CamelCase short name
    std::string short_desc; ///< one-line description
};

/** One result (finding / property violation). */
struct SarifResult
{
    std::string rule_id; ///< must match a SarifRule::id
    std::string level;   ///< "error", "warning", or "note"
    std::string message; ///< human-readable message text
    std::string uri;     ///< repo-relative artifact path, '/'-separated
    int line = 1;        ///< 1-based start line
};

/** Escapes @p s for embedding in a JSON string literal. */
inline std::string
sarif_json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += hex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Normalises @p path into a SARIF artifact URI: forward slashes and no
 * leading "./" segments. */
inline std::string
sarif_uri(std::string path)
{
    for (char &c : path)
        if (c == '\\')
            c = '/';
    while (path.rfind("./", 0) == 0)
        path.erase(0, 2);
    return path;
}

/**
 * Writes one complete SARIF 2.1.0 log to @p os.
 *
 * @param tool_name driver name shown by code-scanning UIs
 * @param tool_version driver semanticVersion
 * @param rules every rule the tool can report (in emission order)
 * @param results the findings (in emission order; may be empty)
 */
inline void
write_sarif(std::ostream &os, const std::string &tool_name,
            const std::string &tool_version,
            const std::vector<SarifRule> &rules,
            const std::vector<SarifResult> &results)
{
    os << "{\n";
    os << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
          "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [\n";
    os << "    {\n";
    os << "      \"tool\": {\n";
    os << "        \"driver\": {\n";
    os << "          \"name\": \"" << sarif_json_escape(tool_name)
       << "\",\n";
    os << "          \"semanticVersion\": \""
       << sarif_json_escape(tool_version) << "\",\n";
    os << "          \"informationUri\": "
          "\"https://github.com/catnap-sim/catnap\",\n";
    os << "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const SarifRule &r = rules[i];
        os << "            {\n";
        os << "              \"id\": \"" << sarif_json_escape(r.id)
           << "\",\n";
        os << "              \"name\": \"" << sarif_json_escape(r.name)
           << "\",\n";
        os << "              \"shortDescription\": { \"text\": \""
           << sarif_json_escape(r.short_desc) << "\" }\n";
        os << "            }" << (i + 1 < rules.size() ? "," : "")
           << "\n";
    }
    os << "          ]\n";
    os << "        }\n";
    os << "      },\n";
    os << "      \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SarifResult &r = results[i];
        os << "        {\n";
        os << "          \"ruleId\": \"" << sarif_json_escape(r.rule_id)
           << "\",\n";
        os << "          \"level\": \"" << sarif_json_escape(r.level)
           << "\",\n";
        os << "          \"message\": { \"text\": \""
           << sarif_json_escape(r.message) << "\" },\n";
        os << "          \"locations\": [\n";
        os << "            {\n";
        os << "              \"physicalLocation\": {\n";
        os << "                \"artifactLocation\": { \"uri\": \""
           << sarif_json_escape(sarif_uri(r.uri)) << "\" },\n";
        os << "                \"region\": { \"startLine\": "
           << (r.line > 0 ? r.line : 1) << " }\n";
        os << "              }\n";
        os << "            }\n";
        os << "          ]\n";
        os << "        }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }\n";
    os << "  ]\n";
    os << "}\n";
}

} // namespace catnap_tools

#endif // CATNAP_TOOLS_COMMON_SARIF_H
