/**
 * @file
 * catnap_sim: command-line driver for one-off experiments.
 *
 * Examples:
 *   catnap_sim --subnets 4 --gating catnap --load 0.1
 *   catnap_sim --subnets 1 --width 512 --pattern transpose --load 0.2
 *   catnap_sim --mode app --workload heavy --subnets 4 --gating catnap
 *   catnap_sim --help
 */
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "app/system.h"
#include "ckpt/checkpoint.h"
#include "exec/point_codec.h"
#include "exec/proc_runner.h"
#include "exec/sweep_runner.h"
#include "obs/export.h"
#include "obs/snapshot.h"
#include "obs/trace_buffer.h"
#include "serve/client.h"
#include "sim/report.h"
#include "sim/simulator.h"

using namespace catnap;

namespace {

// Exit codes (documented in --help): supervisors and CI scripts key off
// these, so each failure class gets its own code.
constexpr int kExitRuntime = 1;    ///< simulation / checkpoint error
constexpr int kExitUsage = 2;      ///< unknown option or malformed CLI
constexpr int kExitBadValue = 3;   ///< syntactically valid flag, invalid value
constexpr int kExitQuarantine = 4; ///< isolated sweep left quarantined points
constexpr int kExitServe = 5;      ///< sweep-service daemon unreachable /
                                   ///< protocol error

[[noreturn]] void
usage(int code)
{
    std::printf(
        "catnap_sim -- drive one Catnap Multi-NoC experiment\n\n"
        "  --mode synthetic|app      experiment type (default synthetic)\n"
        "  --subnets N               number of subnets (default 4)\n"
        "  --width BITS              aggregate datapath bits (default 512)\n"
        "  --selector rr|random|catnap|class (default catnap)\n"
        "  --gating off|idle|fineport|catnap  power gating (catnap)\n"
        "  --metric bfm|bfa|ir|iqocc|delay  congestion metric (bfm)\n"
        "  --threshold X             congestion threshold (metric default)\n"
        "  --no-rcs                  disable the regional OR network\n"
        "  --mesh W                  mesh width == height (default 8)\n"
        "synthetic mode:\n"
        "  --pattern uniform|transpose|bitcomp|bitrev|shuffle|hotspot|"
        "neighbor\n"
        "  --load X                  packets/node/cycle (default 0.1)\n"
        "  --packet-bits N           packet size (default 512)\n"
        "app mode:\n"
        "  --workload light|medium-light|medium-heavy|heavy\n"
        "common:\n"
        "  --warmup N --measure N    phase lengths (cycles)\n"
        "  --seed N                  RNG seed\n"
        "  --no-vscale               run everything at 0.750 V\n"
        "parallel sweeps (synthetic mode):\n"
        "  --loads A,B,C             sweep offered loads instead of one\n"
        "                            --load point (deterministic: output\n"
        "                            is identical for every --jobs value)\n"
        "  --jobs N                  worker threads for the sweep\n"
        "                            (default: one per hardware thread)\n"
        "  --csv FILE                save sweep results as CSV\n"
        "checkpointing (synthetic single-run mode; DESIGN.md §13):\n"
        "  --save-ckpt FILE          write a checkpoint at the end of\n"
        "                            warm-up (or every --ckpt-every N\n"
        "                            cycles, overwriting FILE)\n"
        "  --load-ckpt FILE          resume from FILE and run to\n"
        "                            completion; all other flags must\n"
        "                            match the saving run (hash-checked)\n"
        "  --ckpt-every N            periodic save interval in cycles\n"
        "observability (synthetic mode):\n"
        "  --trace-out FILE          write Chrome trace-event JSON\n"
        "                            (open in Perfetto / chrome://tracing)\n"
        "  --trace-jsonl FILE        write the raw event stream as JSONL\n"
        "  --trace-events N          event ring-buffer capacity\n"
        "                            (default 1048576; oldest dropped)\n"
        "  --snapshot-every N        epoch snapshot interval, cycles\n"
        "  --snapshot-out FILE       snapshot CSV (default snapshots.csv)\n"
        "fault injection (repeatable; empty plan = bit-identical "
        "baseline):\n"
        "  --fault-kill-router C:S:N     hard router death at cycle C,\n"
        "                                subnet S, node N\n"
        "  --fault-kill-link C:S:N:DIR   dead output link (DIR = north|\n"
        "                                east|south|west|local)\n"
        "  --fault-wake-stuck C:S:N      wake sequence hangs until the\n"
        "                                retry path escalates\n"
        "  --fault-lose-wakes C:S:N:DUR  swallow wake-ups for DUR cycles\n"
        "  --fault-delay-wakes C:S:N:DUR:DELAY\n"
        "                                defer wake-ups by DELAY cycles\n"
        "                                for a DUR-cycle window\n"
        "  --fault-rcs-glitch C:S:NODE   flip the latched RCS bit of the\n"
        "                                region containing NODE once\n"
        "  --fault-wake-loss-prob P      per-wake loss probability\n"
        "  --fault-rcs-glitch-prob P     per-(subnet,region) glitch\n"
        "                                probability per RCS latch\n"
        "  --fault-seed N                fault RNG stream seed\n"
        "  --fault-wake-timeout N        cycles before a wake is retried\n"
        "  --fault-packet-timeout N      end-to-end deadline per attempt\n"
        "crash isolation (synthetic --loads mode; DESIGN.md §15):\n"
        "  --isolate                 run each sweep point in a supervised\n"
        "                            worker subprocess: crashes, hangs,\n"
        "                            and bad exits are contained,\n"
        "                            classified, retried, and finally\n"
        "                            quarantined while the rest of the\n"
        "                            sweep completes\n"
        "  --worker PATH             worker executable (default: this\n"
        "                            binary)\n"
        "  --scratch DIR             spec/result exchange directory\n"
        "                            (default .catnap-scratch)\n"
        "  --journal FILE            append every finished point to a\n"
        "                            CRC-checked journal\n"
        "  --resume                  replay FILE's intact records, run\n"
        "                            only missing points (needs --journal;\n"
        "                            merged output is bit-identical to an\n"
        "                            uninterrupted run)\n"
        "  --point-timeout MS        per-attempt wall-clock budget; hung\n"
        "                            workers are SIGKILLed (0 = unlimited)\n"
        "  --point-retries N         extra attempts before quarantine\n"
        "                            (default 2)\n"
        "  --worker-spec F --worker-out F\n"
        "                            (internal) worker mode: run the one\n"
        "                            point sealed in F, write the result\n"
        "sweep service (synthetic --loads mode; DESIGN.md §17):\n"
        "  --serve SOCKET            resolve the sweep against a running\n"
        "                            catnap_serve daemon: cached points\n"
        "                            replay from its result cache, the\n"
        "                            rest execute daemon-side. stdout is\n"
        "                            bit-identical to the local sweep;\n"
        "                            the hit/miss summary goes to stderr\n"
        "  --serve-stats SOCKET      print the daemon's statistics JSON\n"
        "                            and exit (no sweep)\n"
        "exit codes:\n"
        "  0 success                 1 simulation/runtime error\n"
        "  2 usage error             3 invalid configuration value\n"
        "  4 sweep finished with quarantined point(s)\n"
        "  5 sweep-service daemon unreachable or protocol error\n");
    std::exit(code);
}

const char *
need_value(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage(kExitUsage);
    }
    return argv[++i];
}

/** Rejects a flag value with a precise reason; exits kExitBadValue so
 * scripts can tell "bad config" from "bad CLI" and "sim died". */
[[noreturn]] void
die_value(const char *flag, const std::string &value, const std::string &why)
{
    std::fprintf(stderr, "catnap_sim: invalid value '%s' for %s: %s\n",
                 value.c_str(), flag, why.c_str());
    std::exit(kExitBadValue);
}

/** Strict integer parse: whole-string, in [lo, hi], no silent atoi
 * truncation ("--subnets 4x" and "--subnets 99999" both die loudly). */
long long
parse_int(const char *flag, const std::string &value, long long lo,
          long long hi)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || end == value.c_str())
        die_value(flag, value, "not an integer");
    if (errno == ERANGE || v < lo || v > hi) {
        die_value(flag, value, "must be in [" + std::to_string(lo) + ", " +
                                   std::to_string(hi) + "]");
    }
    return v;
}

/** Strict unsigned parse (seeds, cycle counts): rejects '-1' instead of
 * wrapping it to 2^64-1. */
unsigned long long
parse_uint(const char *flag, const std::string &value,
           unsigned long long hi = ~0ull)
{
    if (!value.empty() && value[0] == '-')
        die_value(flag, value, "must be non-negative");
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || end == value.c_str())
        die_value(flag, value, "not an integer");
    if (errno == ERANGE || v > hi)
        die_value(flag, value, "must be at most " + std::to_string(hi));
    return v;
}

/** Strict real parse: whole-string, finite (NaN and inf rejected — a
 * NaN load silently poisons every downstream metric), in [lo, hi]. */
double
parse_real(const char *flag, const std::string &value, double lo, double hi)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0' || end == value.c_str())
        die_value(flag, value, "not a number");
    if (!std::isfinite(v))
        die_value(flag, value, "must be finite (NaN/inf rejected)");
    char range[96];
    std::snprintf(range, sizeof range, "must be in [%g, %g]", lo, hi);
    if (errno == ERANGE || v < lo || v > hi)
        die_value(flag, value, range);
    return v;
}

/** An offered load: finite, strictly positive, sane upper bound. */
double
parse_load(const char *flag, const std::string &value)
{
    const double v = parse_real(flag, value, 0.0, 8.0);
    if (v <= 0.0)
        die_value(flag, value, "offered load must be > 0");
    return v;
}

SelectorKind
parse_selector(const std::string &v)
{
    if (v == "rr") return SelectorKind::kRoundRobin;
    if (v == "random") return SelectorKind::kRandom;
    if (v == "catnap") return SelectorKind::kCatnap;
    if (v == "class") return SelectorKind::kClassPartition;
    std::fprintf(stderr, "unknown selector: %s\n", v.c_str());
    usage(2);
}

GatingKind
parse_gating(const std::string &v)
{
    if (v == "off") return GatingKind::kAlwaysOn;
    if (v == "idle") return GatingKind::kIdle;
    if (v == "fineport") return GatingKind::kFinePort;
    if (v == "catnap") return GatingKind::kCatnap;
    std::fprintf(stderr, "unknown gating: %s\n", v.c_str());
    usage(2);
}

CongestionMetric
parse_metric(const std::string &v)
{
    if (v == "bfm") return CongestionMetric::kBufferMax;
    if (v == "bfa") return CongestionMetric::kBufferAvg;
    if (v == "ir") return CongestionMetric::kInjectionRate;
    if (v == "iqocc") return CongestionMetric::kInjQueueOcc;
    if (v == "delay") return CongestionMetric::kBlockingDelay;
    std::fprintf(stderr, "unknown metric: %s\n", v.c_str());
    usage(2);
}

PatternKind
parse_pattern(const std::string &v)
{
    if (v == "uniform") return PatternKind::kUniformRandom;
    if (v == "transpose") return PatternKind::kTranspose;
    if (v == "bitcomp") return PatternKind::kBitComplement;
    if (v == "bitrev") return PatternKind::kBitReverse;
    if (v == "shuffle") return PatternKind::kShuffle;
    if (v == "hotspot") return PatternKind::kHotspot;
    if (v == "neighbor") return PatternKind::kNeighbor;
    std::fprintf(stderr, "unknown pattern: %s\n", v.c_str());
    usage(2);
}

WorkloadMix
parse_workload(const std::string &v)
{
    if (v == "light") return light_mix();
    if (v == "medium-light") return medium_light_mix();
    if (v == "medium-heavy") return medium_heavy_mix();
    if (v == "heavy") return heavy_mix();
    std::fprintf(stderr, "unknown workload: %s\n", v.c_str());
    usage(2);
}

/**
 * Splits a colon-separated fault spec ("C:S:N[:...]") into exactly
 * @p want numeric fields; with @p tail, one extra trailing string field
 * is split off first (the link direction). Exits with usage on mismatch.
 */
std::vector<long long>
parse_fields(const char *flag, const std::string &value, std::size_t want,
             std::string *tail = nullptr)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t next = value.find(':', pos);
        if (next == std::string::npos) {
            fields.push_back(value.substr(pos));
            break;
        }
        fields.push_back(value.substr(pos, next - pos));
        pos = next + 1;
    }
    if (fields.size() != want + (tail != nullptr ? 1 : 0)) {
        die_value(flag, value,
                  "expected " +
                      std::to_string(want + (tail != nullptr ? 1 : 0)) +
                      " ':'-separated fields, got " +
                      std::to_string(fields.size()));
    }
    if (tail != nullptr) {
        *tail = fields.back();
        fields.pop_back();
    }
    std::vector<long long> out;
    for (const std::string &field : fields) {
        char *end = nullptr;
        errno = 0;
        const long long v = std::strtoll(field.c_str(), &end, 10);
        if (field.empty() || *end != '\0')
            die_value(flag, value, "field '" + field + "' is not an integer");
        if (errno == ERANGE || v < 0)
            die_value(flag, value,
                      "field '" + field + "' must be non-negative");
        out.push_back(v);
    }
    return out;
}

Direction
parse_direction(const std::string &v)
{
    if (v == "north") return Direction::kNorth;
    if (v == "east") return Direction::kEast;
    if (v == "south") return Direction::kSouth;
    if (v == "west") return Direction::kWest;
    if (v == "local") return Direction::kLocal;
    std::fprintf(stderr, "unknown link direction: %s\n", v.c_str());
    usage(2);
}

/** Parses a comma-separated load list ("0.01,0.05,0.1"). */
std::vector<double>
parse_loads(const char *flag, const std::string &value)
{
    std::vector<double> loads;
    std::size_t pos = 0;
    while (pos <= value.size()) {
        std::size_t next = value.find(',', pos);
        if (next == std::string::npos)
            next = value.size();
        const std::string field = value.substr(pos, next - pos);
        loads.push_back(parse_load(flag, field));
        pos = next + 1;
    }
    return loads;
}

/** Absolute path of the running binary, for the default --worker: the
 * supervisor re-executes itself in worker mode. */
std::string
self_exe_path(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
    return std::string(argv0);
}

/**
 * Worker mode (DESIGN.md §15): run exactly one sweep point from a
 * sealed spec file and write the sealed result. Deliberately silent on
 * stdout — the supervisor owns all reporting — and fully sandboxed by
 * the process boundary: any throw, abort, or crash here is classified
 * by the supervisor, never propagated.
 */
int
run_worker(const std::string &spec_path, const std::string &out_path)
{
    try {
        const RunItem item = decode_point_spec(ckpt::read_file(spec_path));
        const SyntheticResult res =
            run_synthetic(item.cfg, item.traffic, item.params);
        ckpt::write_file(out_path, encode_point_result(item, res));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "catnap_sim worker: %s\n", e.what());
        return kExitRuntime;
    }
}

void
print_power(const PowerBreakdown &p, const PowerBreakdown &stat)
{
    std::printf("power        : %.2f W (static %.2f, dynamic %.2f)\n",
                p.total(), stat.total(), p.total() - stat.total());
    std::printf("  buffer %.2f | xbar %.2f | ctrl %.2f | clock %.2f | "
                "link %.2f | NI %.2f | OR-net %.3f\n",
                p.buffer, p.crossbar, p.control, p.clock, p.link, p.ni,
                p.or_net);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "synthetic";
    std::string workload = "light";
    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
    SyntheticConfig traffic;
    traffic.load = 0.1;
    RunParams rp;
    AppRunParams ap;
    double threshold = -1.0;
    std::string trace_out;
    std::string trace_jsonl;
    std::string snapshot_out = "snapshots.csv";
    std::size_t trace_capacity = EventTrace::kDefaultCapacity;
    Cycle snapshot_every = 0;
    std::vector<double> sweep_loads;
    int jobs = 0;
    std::string csv_out;
    std::string save_ckpt;
    std::string load_ckpt;
    Cycle ckpt_every = 0;
    bool isolate = false;
    bool resume = false;
    std::string worker_path;
    std::string scratch_dir = ".catnap-scratch";
    std::string journal_path;
    std::int64_t point_timeout_ms = 0;
    int point_retries = 2;
    std::string worker_spec;
    std::string worker_out;
    std::string serve_socket;
    std::string serve_stats_socket;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") usage(0);
        else if (a == "--mode") mode = need_value(argc, argv, i);
        else if (a == "--subnets")
            cfg.num_subnets = static_cast<int>(
                parse_int(a.c_str(), need_value(argc, argv, i), 1, 16));
        else if (a == "--width")
            cfg.total_link_bits = static_cast<int>(parse_int(
                a.c_str(), need_value(argc, argv, i), 1, 1 << 20));
        else if (a == "--selector")
            cfg.selector = parse_selector(need_value(argc, argv, i));
        else if (a == "--gating")
            cfg.gating = parse_gating(need_value(argc, argv, i));
        else if (a == "--metric")
            cfg.congestion.metric = parse_metric(need_value(argc, argv, i));
        else if (a == "--threshold")
            threshold = parse_real(a.c_str(), need_value(argc, argv, i),
                                   0.0, 1e9);
        else if (a == "--no-rcs") cfg.congestion.use_rcs = false;
        else if (a == "--mesh") {
            // Lower bound 2: a zero- or one-node "mesh" has no links to
            // route over and every pattern degenerates.
            const int w = static_cast<int>(
                parse_int(a.c_str(), need_value(argc, argv, i), 2, 64));
            cfg.mesh_width = cfg.mesh_height = w;
            cfg.region_width = w >= 8 ? 4 : (w >= 4 ? 2 : 1);
        } else if (a == "--pattern")
            traffic.pattern = parse_pattern(need_value(argc, argv, i));
        else if (a == "--load")
            traffic.load = parse_load(a.c_str(), need_value(argc, argv, i));
        else if (a == "--packet-bits")
            traffic.packet_bits = static_cast<int>(parse_int(
                a.c_str(), need_value(argc, argv, i), 1, 1 << 20));
        else if (a == "--workload")
            workload = need_value(argc, argv, i);
        else if (a == "--warmup")
            rp.warmup = ap.warmup = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
        else if (a == "--measure") {
            rp.measure = ap.measure = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
            if (rp.measure == 0)
                die_value(a.c_str(), "0",
                          "measurement phase must be at least 1 cycle");
        } else if (a == "--seed")
            rp.seed = ap.seed =
                parse_uint(a.c_str(), need_value(argc, argv, i));
        else if (a == "--no-vscale")
            rp.voltage_scaling = ap.voltage_scaling = false;
        else if (a == "--loads")
            sweep_loads = parse_loads(a.c_str(), need_value(argc, argv, i));
        else if (a == "--jobs")
            jobs = static_cast<int>(
                parse_int(a.c_str(), need_value(argc, argv, i), 0, 4096));
        else if (a == "--csv")
            csv_out = need_value(argc, argv, i);
        else if (a == "--save-ckpt")
            save_ckpt = need_value(argc, argv, i);
        else if (a == "--load-ckpt")
            load_ckpt = need_value(argc, argv, i);
        else if (a == "--ckpt-every")
            ckpt_every = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
        else if (a == "--trace-out")
            trace_out = need_value(argc, argv, i);
        else if (a == "--trace-jsonl")
            trace_jsonl = need_value(argc, argv, i);
        else if (a == "--trace-events")
            trace_capacity = static_cast<std::size_t>(parse_int(
                a.c_str(), need_value(argc, argv, i), 1, 1ll << 32));
        else if (a == "--snapshot-every")
            snapshot_every = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
        else if (a == "--snapshot-out")
            snapshot_out = need_value(argc, argv, i);
        else if (a == "--isolate")
            isolate = true;
        else if (a == "--resume")
            resume = true;
        else if (a == "--worker")
            worker_path = need_value(argc, argv, i);
        else if (a == "--scratch")
            scratch_dir = need_value(argc, argv, i);
        else if (a == "--journal")
            journal_path = need_value(argc, argv, i);
        else if (a == "--point-timeout")
            point_timeout_ms = static_cast<std::int64_t>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 86400000ull));
        else if (a == "--point-retries")
            point_retries = static_cast<int>(
                parse_int(a.c_str(), need_value(argc, argv, i), 0, 100));
        else if (a == "--worker-spec")
            worker_spec = need_value(argc, argv, i);
        else if (a == "--worker-out")
            worker_out = need_value(argc, argv, i);
        else if (a == "--serve")
            serve_socket = need_value(argc, argv, i);
        else if (a == "--serve-stats")
            serve_stats_socket = need_value(argc, argv, i);
        else if (a == "--fault-kill-router") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.kill_router(static_cast<Cycle>(f[0]),
                                  static_cast<SubnetId>(f[1]),
                                  static_cast<NodeId>(f[2]));
        } else if (a == "--fault-kill-link") {
            std::string dir;
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3, &dir);
            cfg.fault.kill_link(static_cast<Cycle>(f[0]),
                                static_cast<SubnetId>(f[1]),
                                static_cast<NodeId>(f[2]),
                                parse_direction(dir));
        } else if (a == "--fault-wake-stuck") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.stick_wake(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]));
        } else if (a == "--fault-lose-wakes") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 4);
            cfg.fault.lose_wakes(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]),
                                 static_cast<Cycle>(f[3]));
        } else if (a == "--fault-delay-wakes") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 5);
            cfg.fault.delay_wakes(static_cast<Cycle>(f[0]),
                                  static_cast<SubnetId>(f[1]),
                                  static_cast<NodeId>(f[2]),
                                  static_cast<Cycle>(f[3]),
                                  static_cast<Cycle>(f[4]));
        } else if (a == "--fault-rcs-glitch") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.glitch_rcs(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]));
        } else if (a == "--fault-wake-loss-prob")
            cfg.fault.wake_loss_prob = parse_real(
                a.c_str(), need_value(argc, argv, i), 0.0, 1.0);
        else if (a == "--fault-rcs-glitch-prob")
            cfg.fault.rcs_glitch_prob = parse_real(
                a.c_str(), need_value(argc, argv, i), 0.0, 1.0);
        else if (a == "--fault-seed")
            cfg.fault.seed =
                parse_uint(a.c_str(), need_value(argc, argv, i));
        else if (a == "--fault-wake-timeout")
            cfg.fault.tuning.t_wake_timeout = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
        else if (a == "--fault-packet-timeout")
            cfg.fault.tuning.packet_timeout = static_cast<Cycle>(parse_uint(
                a.c_str(), need_value(argc, argv, i), 1000000000000ull));
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(kExitUsage);
        }
    }

    // Stats query mode short-circuits everything else: talk to the
    // daemon, print its counters, done.
    if (!serve_stats_socket.empty()) {
        try {
            serve::ServeClientOptions copts;
            copts.socket_path = serve_stats_socket;
            copts.attempts = 1;
            std::printf("%s\n", serve::fetch_stats(copts).to_json().c_str());
            return 0;
        } catch (const serve::ServeError &e) {
            std::fprintf(stderr, "catnap_sim: %s\n", e.what());
            return kExitServe;
        }
    }

    // Worker mode short-circuits everything else: the spec file is the
    // whole configuration (see run_worker above).
    if (!worker_spec.empty() || !worker_out.empty()) {
        if (worker_spec.empty() || worker_out.empty()) {
            std::fprintf(stderr, "--worker-spec and --worker-out are "
                                 "required together\n");
            usage(kExitUsage);
        }
        return run_worker(worker_spec, worker_out);
    }

    // Cross-field checks the per-flag parsers cannot see.
    if (cfg.total_link_bits < cfg.num_subnets) {
        die_value("--width", std::to_string(cfg.total_link_bits),
                  "fewer aggregate bits than subnets leaves a zero-width "
                  "datapath per subnet");
    }
    if (resume && journal_path.empty()) {
        std::fprintf(stderr, "--resume requires --journal FILE\n");
        usage(kExitUsage);
    }
    if ((resume || !journal_path.empty()) && !isolate) {
        std::fprintf(stderr, "--journal/--resume require --isolate\n");
        usage(kExitUsage);
    }
    if (isolate && (mode != "synthetic" || sweep_loads.empty())) {
        std::fprintf(stderr, "--isolate applies to synthetic --loads "
                             "sweeps\n");
        usage(kExitUsage);
    }
    if (!serve_socket.empty()) {
        if (mode != "synthetic" || sweep_loads.empty()) {
            std::fprintf(stderr, "--serve applies to synthetic --loads "
                                 "sweeps\n");
            usage(kExitUsage);
        }
        if (isolate || !journal_path.empty()) {
            std::fprintf(stderr, "--serve and --isolate/--journal are "
                                 "mutually exclusive (the daemon owns "
                                 "execution and persistence)\n");
            usage(kExitUsage);
        }
    }
    cfg.congestion.threshold =
        threshold >= 0.0
            ? threshold
            : CongestionConfig::default_threshold(cfg.congestion.metric);

    if (mode == "synthetic" && !sweep_loads.empty()) {
        // Parallel load sweep: one run_synthetic point per load, fanned
        // out over the execution engine; results arrive in load order
        // and are bit-identical for every --jobs value.
        if (!trace_out.empty() || !trace_jsonl.empty() ||
            snapshot_every > 0) {
            std::fprintf(stderr, "tracing/snapshots record one run; not "
                                 "available with --loads\n");
            usage(2);
        }
        if (!save_ckpt.empty() || !load_ckpt.empty()) {
            std::fprintf(stderr, "checkpoints capture one run; not "
                                 "available with --loads\n");
            usage(2);
        }
        std::vector<SyntheticResult> rows;
        if (!serve_socket.empty()) {
            // Sweep-service backend: the daemon answers cached points
            // from its result cache and executes only the rest. stdout
            // stays bit-identical to the local sweep (the summary goes
            // to stderr, unlike --isolate's stdout status line, so a
            // warm-cache run diffs clean against the serial run).
            std::vector<RunItem> items;
            items.reserve(sweep_loads.size());
            for (const double load : sweep_loads) {
                RunItem item;
                item.cfg = cfg;
                item.traffic = traffic;
                item.traffic.load = load;
                item.params = rp;
                items.push_back(std::move(item));
            }
            serve::ServeClientOptions copts;
            copts.socket_path = serve_socket;
            serve::ServedSweep sweep;
            try {
                sweep = serve::run_batch_served(items, copts);
            } catch (const serve::ServeError &e) {
                std::fprintf(stderr, "catnap_sim: %s\n", e.what());
                return kExitServe;
            }
            std::fprintf(stderr,
                         "[serve] %zu hit(s), %zu executed, %zu "
                         "quarantined\n",
                         sweep.hits, sweep.misses, sweep.quarantined);
            if (!sweep.ok()) {
                std::fputs(sweep.quarantine_summary().c_str(), stderr);
                return kExitQuarantine;
            }
            rows = sweep.merged();
        } else if (isolate) {
            // Crash-isolated backend: one supervised worker subprocess
            // per point, journalled and resumable; merged rows are
            // bit-identical to the in-process sweep below.
            std::vector<RunItem> items;
            items.reserve(sweep_loads.size());
            for (const double load : sweep_loads) {
                RunItem item;
                item.cfg = cfg;
                item.traffic = traffic;
                item.traffic.load = load;
                item.params = rp;
                items.push_back(std::move(item));
            }
            ProcOptions po;
            po.worker = worker_path.empty() ? self_exe_path(argv[0])
                                            : worker_path;
            po.scratch_dir = scratch_dir;
            po.journal = journal_path;
            po.resume = resume;
            po.jobs = jobs;
            po.max_retries = point_retries;
            po.timeout_ms = point_timeout_ms;
            ProcSweepResult sweep;
            try {
                ProcRunner runner(po);
                sweep = runner.run(items);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "catnap_sim: %s\n", e.what());
                return kExitRuntime;
            }
            std::printf("isolate      : %zu worker(s) spawned, %zu "
                        "point(s) from journal, %zu quarantined\n",
                        sweep.spawned, sweep.from_journal,
                        sweep.quarantined);
            if (!sweep.ok()) {
                std::fputs(sweep.quarantine_summary().c_str(), stderr);
                return kExitQuarantine;
            }
            rows = sweep.merged();
        } else {
            ExecOptions eo;
            eo.jobs = jobs;
            rows = sweep_load_parallel(cfg, traffic, rp, sweep_loads, eo);
        }
        std::printf("config       : %s (%dx%d mesh, %s selector, %s)\n",
                    rows.front().config_label.c_str(), cfg.mesh_width,
                    cfg.mesh_height, selector_kind_name(cfg.selector),
                    gating_kind_name(cfg.gating));
        std::printf("%-8s %10s %10s %10s %8s %10s\n", "load", "accepted",
                    "lat(cy)", "p99(cy)", "CSC(%)", "power(W)");
        for (const SyntheticResult &r : rows) {
            std::printf("%-8.3f %10.3f %10.1f %10.1f %8.1f %10.2f\n",
                        r.offered_load, r.accepted_rate, r.avg_latency,
                        r.p99_latency, r.csc_percent, r.power.total());
        }
        if (!csv_out.empty()) {
            save_csv(csv_out, rows);
            std::printf("csv          : wrote %zu rows to %s\n",
                        rows.size(), csv_out.c_str());
        }
    } else if (mode == "synthetic") {
        std::unique_ptr<EventTrace> trace;
        if (!trace_out.empty() || !trace_jsonl.empty()) {
            trace = std::make_unique<EventTrace>(trace_capacity);
            rp.sink = trace.get();
        }
        std::unique_ptr<SnapshotRecorder> snaps;
        if (snapshot_every > 0) {
            snaps = std::make_unique<SnapshotRecorder>(snapshot_every);
            rp.snapshots = snaps.get();
        }

        std::unique_ptr<SyntheticRun> run;
        try {
            if (!load_ckpt.empty()) {
                run = SyntheticRun::restore_checkpoint(cfg, traffic, rp,
                                                       load_ckpt);
                std::printf("checkpoint   : resumed %s at cycle %llu\n",
                            load_ckpt.c_str(),
                            static_cast<unsigned long long>(run->now()));
            } else {
                run = std::make_unique<SyntheticRun>(cfg, traffic, rp);
            }
            if (!save_ckpt.empty() && ckpt_every > 0)
                run->set_autosave(save_ckpt, ckpt_every);
            run->run_warmup();
            if (!save_ckpt.empty() && ckpt_every == 0) {
                run->save_checkpoint(save_ckpt);
                std::printf(
                    "checkpoint   : wrote %s at end of warm-up "
                    "(cycle %llu)\n",
                    save_ckpt.c_str(),
                    static_cast<unsigned long long>(run->now()));
            }
        } catch (const ckpt::CkptError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        const SyntheticResult r = run->finish();
        std::printf("config       : %s (%dx%d mesh, %s selector, %s)\n",
                    r.config_label.c_str(), cfg.mesh_width, cfg.mesh_height,
                    selector_kind_name(cfg.selector),
                    gating_kind_name(cfg.gating));
        std::printf("traffic      : %s @ %.3f pkts/node/cycle\n",
                    pattern_kind_name(traffic.pattern), traffic.load);
        std::printf("accepted     : %.3f pkts/node/cycle\n",
                    r.accepted_rate);
        std::printf("latency      : %.1f cycles (network %.1f)\n",
                    r.avg_latency, r.avg_net_latency);
        std::printf("CSC          : %.1f %%\n", r.csc_percent);
        std::printf("voltage      : %.3f V\n", r.vdd);
        print_power(r.power, r.power_static);
        if (!cfg.fault.empty()) {
            std::printf("faults       : %llu fired, %llu subnet "
                        "failure(s)\n",
                        static_cast<unsigned long long>(r.faults_fired),
                        static_cast<unsigned long long>(
                            r.subnet_failures));
            std::printf("resilience   : %llu retransmit(s), %llu "
                        "dropped packet(s), drained=%s\n",
                        static_cast<unsigned long long>(r.retransmits),
                        static_cast<unsigned long long>(
                            r.dropped_packets),
                        r.drained ? "yes" : "no");
        }

        if (trace) {
            std::printf("trace        : %llu events recorded, %llu "
                        "dropped\n",
                        static_cast<unsigned long long>(trace->recorded()),
                        static_cast<unsigned long long>(trace->dropped()));
            TraceExportMeta meta;
            meta.num_subnets = cfg.num_subnets;
            meta.num_nodes = cfg.mesh_width * cfg.mesh_height;
            meta.counter_window = 50;
            if (!trace_out.empty()) {
                save_chrome_trace(trace_out, *trace, meta);
                std::printf("trace        : wrote %s (open in Perfetto)\n",
                            trace_out.c_str());
            }
            if (!trace_jsonl.empty()) {
                save_jsonl(trace_jsonl, *trace);
                std::printf("trace        : wrote %s\n",
                            trace_jsonl.c_str());
            }
        }
        if (snaps) {
            save_snapshot_csv(snapshot_out, *snaps);
            std::printf("snapshots    : wrote %zu rows to %s\n",
                        snaps->rows().size(), snapshot_out.c_str());
        }
    } else if (mode == "app") {
        const WorkloadMix mix = parse_workload(workload);
        const AppRunResult r = run_app_workload(cfg, mix, ap);
        std::printf("config       : %s, workload %s (avg MPKI %.1f)\n",
                    r.config_label.c_str(), mix.name.c_str(),
                    mix.average_mpki());
        std::printf("IPC/core     : %.3f\n", r.ipc);
        std::printf("pkt latency  : %.1f cycles\n", r.avg_latency);
        std::printf("CSC          : %.1f %%\n", r.csc_percent);
        std::printf("voltage      : %.3f V\n", r.vdd);
        print_power(r.power, r.power_static);
    } else {
        std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
        usage(2);
    }
    return 0;
}
