/**
 * @file
 * catnap_sim: command-line driver for one-off experiments.
 *
 * Examples:
 *   catnap_sim --subnets 4 --gating catnap --load 0.1
 *   catnap_sim --subnets 1 --width 512 --pattern transpose --load 0.2
 *   catnap_sim --mode app --workload heavy --subnets 4 --gating catnap
 *   catnap_sim --help
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "app/system.h"
#include "ckpt/checkpoint.h"
#include "exec/sweep_runner.h"
#include "obs/export.h"
#include "obs/snapshot.h"
#include "obs/trace_buffer.h"
#include "sim/report.h"
#include "sim/simulator.h"

using namespace catnap;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "catnap_sim -- drive one Catnap Multi-NoC experiment\n\n"
        "  --mode synthetic|app      experiment type (default synthetic)\n"
        "  --subnets N               number of subnets (default 4)\n"
        "  --width BITS              aggregate datapath bits (default 512)\n"
        "  --selector rr|random|catnap|class (default catnap)\n"
        "  --gating off|idle|fineport|catnap  power gating (catnap)\n"
        "  --metric bfm|bfa|ir|iqocc|delay  congestion metric (bfm)\n"
        "  --threshold X             congestion threshold (metric default)\n"
        "  --no-rcs                  disable the regional OR network\n"
        "  --mesh W                  mesh width == height (default 8)\n"
        "synthetic mode:\n"
        "  --pattern uniform|transpose|bitcomp|bitrev|shuffle|hotspot|"
        "neighbor\n"
        "  --load X                  packets/node/cycle (default 0.1)\n"
        "  --packet-bits N           packet size (default 512)\n"
        "app mode:\n"
        "  --workload light|medium-light|medium-heavy|heavy\n"
        "common:\n"
        "  --warmup N --measure N    phase lengths (cycles)\n"
        "  --seed N                  RNG seed\n"
        "  --no-vscale               run everything at 0.750 V\n"
        "parallel sweeps (synthetic mode):\n"
        "  --loads A,B,C             sweep offered loads instead of one\n"
        "                            --load point (deterministic: output\n"
        "                            is identical for every --jobs value)\n"
        "  --jobs N                  worker threads for the sweep\n"
        "                            (default: one per hardware thread)\n"
        "  --csv FILE                save sweep results as CSV\n"
        "checkpointing (synthetic single-run mode; DESIGN.md §13):\n"
        "  --save-ckpt FILE          write a checkpoint at the end of\n"
        "                            warm-up (or every --ckpt-every N\n"
        "                            cycles, overwriting FILE)\n"
        "  --load-ckpt FILE          resume from FILE and run to\n"
        "                            completion; all other flags must\n"
        "                            match the saving run (hash-checked)\n"
        "  --ckpt-every N            periodic save interval in cycles\n"
        "observability (synthetic mode):\n"
        "  --trace-out FILE          write Chrome trace-event JSON\n"
        "                            (open in Perfetto / chrome://tracing)\n"
        "  --trace-jsonl FILE        write the raw event stream as JSONL\n"
        "  --trace-events N          event ring-buffer capacity\n"
        "                            (default 1048576; oldest dropped)\n"
        "  --snapshot-every N        epoch snapshot interval, cycles\n"
        "  --snapshot-out FILE       snapshot CSV (default snapshots.csv)\n"
        "fault injection (repeatable; empty plan = bit-identical "
        "baseline):\n"
        "  --fault-kill-router C:S:N     hard router death at cycle C,\n"
        "                                subnet S, node N\n"
        "  --fault-kill-link C:S:N:DIR   dead output link (DIR = north|\n"
        "                                east|south|west|local)\n"
        "  --fault-wake-stuck C:S:N      wake sequence hangs until the\n"
        "                                retry path escalates\n"
        "  --fault-lose-wakes C:S:N:DUR  swallow wake-ups for DUR cycles\n"
        "  --fault-delay-wakes C:S:N:DUR:DELAY\n"
        "                                defer wake-ups by DELAY cycles\n"
        "                                for a DUR-cycle window\n"
        "  --fault-rcs-glitch C:S:NODE   flip the latched RCS bit of the\n"
        "                                region containing NODE once\n"
        "  --fault-wake-loss-prob P      per-wake loss probability\n"
        "  --fault-rcs-glitch-prob P     per-(subnet,region) glitch\n"
        "                                probability per RCS latch\n"
        "  --fault-seed N                fault RNG stream seed\n"
        "  --fault-wake-timeout N        cycles before a wake is retried\n"
        "  --fault-packet-timeout N      end-to-end deadline per attempt\n");
    std::exit(code);
}

const char *
need_value(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage(2);
    }
    return argv[++i];
}

SelectorKind
parse_selector(const std::string &v)
{
    if (v == "rr") return SelectorKind::kRoundRobin;
    if (v == "random") return SelectorKind::kRandom;
    if (v == "catnap") return SelectorKind::kCatnap;
    if (v == "class") return SelectorKind::kClassPartition;
    std::fprintf(stderr, "unknown selector: %s\n", v.c_str());
    usage(2);
}

GatingKind
parse_gating(const std::string &v)
{
    if (v == "off") return GatingKind::kAlwaysOn;
    if (v == "idle") return GatingKind::kIdle;
    if (v == "fineport") return GatingKind::kFinePort;
    if (v == "catnap") return GatingKind::kCatnap;
    std::fprintf(stderr, "unknown gating: %s\n", v.c_str());
    usage(2);
}

CongestionMetric
parse_metric(const std::string &v)
{
    if (v == "bfm") return CongestionMetric::kBufferMax;
    if (v == "bfa") return CongestionMetric::kBufferAvg;
    if (v == "ir") return CongestionMetric::kInjectionRate;
    if (v == "iqocc") return CongestionMetric::kInjQueueOcc;
    if (v == "delay") return CongestionMetric::kBlockingDelay;
    std::fprintf(stderr, "unknown metric: %s\n", v.c_str());
    usage(2);
}

PatternKind
parse_pattern(const std::string &v)
{
    if (v == "uniform") return PatternKind::kUniformRandom;
    if (v == "transpose") return PatternKind::kTranspose;
    if (v == "bitcomp") return PatternKind::kBitComplement;
    if (v == "bitrev") return PatternKind::kBitReverse;
    if (v == "shuffle") return PatternKind::kShuffle;
    if (v == "hotspot") return PatternKind::kHotspot;
    if (v == "neighbor") return PatternKind::kNeighbor;
    std::fprintf(stderr, "unknown pattern: %s\n", v.c_str());
    usage(2);
}

WorkloadMix
parse_workload(const std::string &v)
{
    if (v == "light") return light_mix();
    if (v == "medium-light") return medium_light_mix();
    if (v == "medium-heavy") return medium_heavy_mix();
    if (v == "heavy") return heavy_mix();
    std::fprintf(stderr, "unknown workload: %s\n", v.c_str());
    usage(2);
}

/**
 * Splits a colon-separated fault spec ("C:S:N[:...]") into exactly
 * @p want numeric fields; with @p tail, one extra trailing string field
 * is split off first (the link direction). Exits with usage on mismatch.
 */
std::vector<long long>
parse_fields(const char *flag, const std::string &value, std::size_t want,
             std::string *tail = nullptr)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t next = value.find(':', pos);
        if (next == std::string::npos) {
            fields.push_back(value.substr(pos));
            break;
        }
        fields.push_back(value.substr(pos, next - pos));
        pos = next + 1;
    }
    if (fields.size() != want + (tail != nullptr ? 1 : 0)) {
        std::fprintf(stderr, "expected %zu ':'-separated fields in %s %s\n",
                     want + (tail != nullptr ? 1 : 0), flag, value.c_str());
        usage(2);
    }
    if (tail != nullptr) {
        *tail = fields.back();
        fields.pop_back();
    }
    std::vector<long long> out;
    for (const std::string &field : fields) {
        char *end = nullptr;
        const long long v = std::strtoll(field.c_str(), &end, 10);
        if (field.empty() || *end != '\0' || v < 0) {
            std::fprintf(stderr, "bad field '%s' in %s %s\n",
                         field.c_str(), flag, value.c_str());
            usage(2);
        }
        out.push_back(v);
    }
    return out;
}

Direction
parse_direction(const std::string &v)
{
    if (v == "north") return Direction::kNorth;
    if (v == "east") return Direction::kEast;
    if (v == "south") return Direction::kSouth;
    if (v == "west") return Direction::kWest;
    if (v == "local") return Direction::kLocal;
    std::fprintf(stderr, "unknown link direction: %s\n", v.c_str());
    usage(2);
}

/** Parses a comma-separated load list ("0.01,0.05,0.1"). */
std::vector<double>
parse_loads(const char *flag, const std::string &value)
{
    std::vector<double> loads;
    std::size_t pos = 0;
    while (pos <= value.size()) {
        std::size_t next = value.find(',', pos);
        if (next == std::string::npos)
            next = value.size();
        const std::string field = value.substr(pos, next - pos);
        char *end = nullptr;
        const double v = std::strtod(field.c_str(), &end);
        if (field.empty() || *end != '\0' || v <= 0.0) {
            std::fprintf(stderr, "bad load '%s' in %s %s\n", field.c_str(),
                         flag, value.c_str());
            usage(2);
        }
        loads.push_back(v);
        pos = next + 1;
    }
    return loads;
}

void
print_power(const PowerBreakdown &p, const PowerBreakdown &stat)
{
    std::printf("power        : %.2f W (static %.2f, dynamic %.2f)\n",
                p.total(), stat.total(), p.total() - stat.total());
    std::printf("  buffer %.2f | xbar %.2f | ctrl %.2f | clock %.2f | "
                "link %.2f | NI %.2f | OR-net %.3f\n",
                p.buffer, p.crossbar, p.control, p.clock, p.link, p.ni,
                p.or_net);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "synthetic";
    std::string workload = "light";
    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
    SyntheticConfig traffic;
    traffic.load = 0.1;
    RunParams rp;
    AppRunParams ap;
    double threshold = -1.0;
    std::string trace_out;
    std::string trace_jsonl;
    std::string snapshot_out = "snapshots.csv";
    std::size_t trace_capacity = EventTrace::kDefaultCapacity;
    Cycle snapshot_every = 0;
    std::vector<double> sweep_loads;
    int jobs = 0;
    std::string csv_out;
    std::string save_ckpt;
    std::string load_ckpt;
    Cycle ckpt_every = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") usage(0);
        else if (a == "--mode") mode = need_value(argc, argv, i);
        else if (a == "--subnets")
            cfg.num_subnets = std::atoi(need_value(argc, argv, i));
        else if (a == "--width")
            cfg.total_link_bits = std::atoi(need_value(argc, argv, i));
        else if (a == "--selector")
            cfg.selector = parse_selector(need_value(argc, argv, i));
        else if (a == "--gating")
            cfg.gating = parse_gating(need_value(argc, argv, i));
        else if (a == "--metric")
            cfg.congestion.metric = parse_metric(need_value(argc, argv, i));
        else if (a == "--threshold")
            threshold = std::atof(need_value(argc, argv, i));
        else if (a == "--no-rcs") cfg.congestion.use_rcs = false;
        else if (a == "--mesh") {
            const int w = std::atoi(need_value(argc, argv, i));
            cfg.mesh_width = cfg.mesh_height = w;
            cfg.region_width = w >= 8 ? 4 : (w >= 4 ? 2 : 1);
        } else if (a == "--pattern")
            traffic.pattern = parse_pattern(need_value(argc, argv, i));
        else if (a == "--load")
            traffic.load = std::atof(need_value(argc, argv, i));
        else if (a == "--packet-bits")
            traffic.packet_bits = std::atoi(need_value(argc, argv, i));
        else if (a == "--workload")
            workload = need_value(argc, argv, i);
        else if (a == "--warmup")
            rp.warmup = ap.warmup =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else if (a == "--measure")
            rp.measure = ap.measure =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else if (a == "--seed")
            rp.seed = ap.seed = static_cast<std::uint64_t>(
                std::atoll(need_value(argc, argv, i)));
        else if (a == "--no-vscale")
            rp.voltage_scaling = ap.voltage_scaling = false;
        else if (a == "--loads")
            sweep_loads = parse_loads(a.c_str(), need_value(argc, argv, i));
        else if (a == "--jobs")
            jobs = std::atoi(need_value(argc, argv, i));
        else if (a == "--csv")
            csv_out = need_value(argc, argv, i);
        else if (a == "--save-ckpt")
            save_ckpt = need_value(argc, argv, i);
        else if (a == "--load-ckpt")
            load_ckpt = need_value(argc, argv, i);
        else if (a == "--ckpt-every")
            ckpt_every =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else if (a == "--trace-out")
            trace_out = need_value(argc, argv, i);
        else if (a == "--trace-jsonl")
            trace_jsonl = need_value(argc, argv, i);
        else if (a == "--trace-events")
            trace_capacity = static_cast<std::size_t>(
                std::atoll(need_value(argc, argv, i)));
        else if (a == "--snapshot-every")
            snapshot_every =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else if (a == "--snapshot-out")
            snapshot_out = need_value(argc, argv, i);
        else if (a == "--fault-kill-router") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.kill_router(static_cast<Cycle>(f[0]),
                                  static_cast<SubnetId>(f[1]),
                                  static_cast<NodeId>(f[2]));
        } else if (a == "--fault-kill-link") {
            std::string dir;
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3, &dir);
            cfg.fault.kill_link(static_cast<Cycle>(f[0]),
                                static_cast<SubnetId>(f[1]),
                                static_cast<NodeId>(f[2]),
                                parse_direction(dir));
        } else if (a == "--fault-wake-stuck") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.stick_wake(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]));
        } else if (a == "--fault-lose-wakes") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 4);
            cfg.fault.lose_wakes(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]),
                                 static_cast<Cycle>(f[3]));
        } else if (a == "--fault-delay-wakes") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 5);
            cfg.fault.delay_wakes(static_cast<Cycle>(f[0]),
                                  static_cast<SubnetId>(f[1]),
                                  static_cast<NodeId>(f[2]),
                                  static_cast<Cycle>(f[3]),
                                  static_cast<Cycle>(f[4]));
        } else if (a == "--fault-rcs-glitch") {
            const auto f =
                parse_fields(a.c_str(), need_value(argc, argv, i), 3);
            cfg.fault.glitch_rcs(static_cast<Cycle>(f[0]),
                                 static_cast<SubnetId>(f[1]),
                                 static_cast<NodeId>(f[2]));
        } else if (a == "--fault-wake-loss-prob")
            cfg.fault.wake_loss_prob = std::atof(need_value(argc, argv, i));
        else if (a == "--fault-rcs-glitch-prob")
            cfg.fault.rcs_glitch_prob = std::atof(need_value(argc, argv, i));
        else if (a == "--fault-seed")
            cfg.fault.seed = static_cast<std::uint64_t>(
                std::atoll(need_value(argc, argv, i)));
        else if (a == "--fault-wake-timeout")
            cfg.fault.tuning.t_wake_timeout =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else if (a == "--fault-packet-timeout")
            cfg.fault.tuning.packet_timeout =
                static_cast<Cycle>(std::atoll(need_value(argc, argv, i)));
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(2);
        }
    }
    cfg.congestion.threshold =
        threshold >= 0.0
            ? threshold
            : CongestionConfig::default_threshold(cfg.congestion.metric);

    if (mode == "synthetic" && !sweep_loads.empty()) {
        // Parallel load sweep: one run_synthetic point per load, fanned
        // out over the execution engine; results arrive in load order
        // and are bit-identical for every --jobs value.
        if (!trace_out.empty() || !trace_jsonl.empty() ||
            snapshot_every > 0) {
            std::fprintf(stderr, "tracing/snapshots record one run; not "
                                 "available with --loads\n");
            usage(2);
        }
        if (!save_ckpt.empty() || !load_ckpt.empty()) {
            std::fprintf(stderr, "checkpoints capture one run; not "
                                 "available with --loads\n");
            usage(2);
        }
        ExecOptions eo;
        eo.jobs = jobs;
        const std::vector<SyntheticResult> rows =
            sweep_load_parallel(cfg, traffic, rp, sweep_loads, eo);
        std::printf("config       : %s (%dx%d mesh, %s selector, %s)\n",
                    rows.front().config_label.c_str(), cfg.mesh_width,
                    cfg.mesh_height, selector_kind_name(cfg.selector),
                    gating_kind_name(cfg.gating));
        std::printf("%-8s %10s %10s %10s %8s %10s\n", "load", "accepted",
                    "lat(cy)", "p99(cy)", "CSC(%)", "power(W)");
        for (const SyntheticResult &r : rows) {
            std::printf("%-8.3f %10.3f %10.1f %10.1f %8.1f %10.2f\n",
                        r.offered_load, r.accepted_rate, r.avg_latency,
                        r.p99_latency, r.csc_percent, r.power.total());
        }
        if (!csv_out.empty()) {
            save_csv(csv_out, rows);
            std::printf("csv          : wrote %zu rows to %s\n",
                        rows.size(), csv_out.c_str());
        }
    } else if (mode == "synthetic") {
        std::unique_ptr<EventTrace> trace;
        if (!trace_out.empty() || !trace_jsonl.empty()) {
            trace = std::make_unique<EventTrace>(trace_capacity);
            rp.sink = trace.get();
        }
        std::unique_ptr<SnapshotRecorder> snaps;
        if (snapshot_every > 0) {
            snaps = std::make_unique<SnapshotRecorder>(snapshot_every);
            rp.snapshots = snaps.get();
        }

        std::unique_ptr<SyntheticRun> run;
        try {
            if (!load_ckpt.empty()) {
                run = SyntheticRun::restore_checkpoint(cfg, traffic, rp,
                                                       load_ckpt);
                std::printf("checkpoint   : resumed %s at cycle %llu\n",
                            load_ckpt.c_str(),
                            static_cast<unsigned long long>(run->now()));
            } else {
                run = std::make_unique<SyntheticRun>(cfg, traffic, rp);
            }
            if (!save_ckpt.empty() && ckpt_every > 0)
                run->set_autosave(save_ckpt, ckpt_every);
            run->run_warmup();
            if (!save_ckpt.empty() && ckpt_every == 0) {
                run->save_checkpoint(save_ckpt);
                std::printf(
                    "checkpoint   : wrote %s at end of warm-up "
                    "(cycle %llu)\n",
                    save_ckpt.c_str(),
                    static_cast<unsigned long long>(run->now()));
            }
        } catch (const ckpt::CkptError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        const SyntheticResult r = run->finish();
        std::printf("config       : %s (%dx%d mesh, %s selector, %s)\n",
                    r.config_label.c_str(), cfg.mesh_width, cfg.mesh_height,
                    selector_kind_name(cfg.selector),
                    gating_kind_name(cfg.gating));
        std::printf("traffic      : %s @ %.3f pkts/node/cycle\n",
                    pattern_kind_name(traffic.pattern), traffic.load);
        std::printf("accepted     : %.3f pkts/node/cycle\n",
                    r.accepted_rate);
        std::printf("latency      : %.1f cycles (network %.1f)\n",
                    r.avg_latency, r.avg_net_latency);
        std::printf("CSC          : %.1f %%\n", r.csc_percent);
        std::printf("voltage      : %.3f V\n", r.vdd);
        print_power(r.power, r.power_static);
        if (!cfg.fault.empty()) {
            std::printf("faults       : %llu fired, %llu subnet "
                        "failure(s)\n",
                        static_cast<unsigned long long>(r.faults_fired),
                        static_cast<unsigned long long>(
                            r.subnet_failures));
            std::printf("resilience   : %llu retransmit(s), %llu "
                        "dropped packet(s), drained=%s\n",
                        static_cast<unsigned long long>(r.retransmits),
                        static_cast<unsigned long long>(
                            r.dropped_packets),
                        r.drained ? "yes" : "no");
        }

        if (trace) {
            std::printf("trace        : %llu events recorded, %llu "
                        "dropped\n",
                        static_cast<unsigned long long>(trace->recorded()),
                        static_cast<unsigned long long>(trace->dropped()));
            TraceExportMeta meta;
            meta.num_subnets = cfg.num_subnets;
            meta.num_nodes = cfg.mesh_width * cfg.mesh_height;
            meta.counter_window = 50;
            if (!trace_out.empty()) {
                save_chrome_trace(trace_out, *trace, meta);
                std::printf("trace        : wrote %s (open in Perfetto)\n",
                            trace_out.c_str());
            }
            if (!trace_jsonl.empty()) {
                save_jsonl(trace_jsonl, *trace);
                std::printf("trace        : wrote %s\n",
                            trace_jsonl.c_str());
            }
        }
        if (snaps) {
            save_snapshot_csv(snapshot_out, *snaps);
            std::printf("snapshots    : wrote %zu rows to %s\n",
                        snaps->rows().size(), snapshot_out.c_str());
        }
    } else if (mode == "app") {
        const WorkloadMix mix = parse_workload(workload);
        const AppRunResult r = run_app_workload(cfg, mix, ap);
        std::printf("config       : %s, workload %s (avg MPKI %.1f)\n",
                    r.config_label.c_str(), mix.name.c_str(),
                    mix.average_mpki());
        std::printf("IPC/core     : %.3f\n", r.ipc);
        std::printf("pkt latency  : %.1f cycles\n", r.avg_latency);
        std::printf("CSC          : %.1f %%\n", r.csc_percent);
        std::printf("voltage      : %.3f V\n", r.vdd);
        print_power(r.power, r.power_static);
    } else {
        std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
        usage(2);
    }
    return 0;
}
