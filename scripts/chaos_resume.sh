#!/usr/bin/env bash
# Chaos drill for the crash-isolated sweep backend (DESIGN.md §15):
# run the Figure 10 sweep under --isolate, SIGKILL a worker mid-point,
# then SIGKILL the supervisor itself mid-sweep, resume from the journal,
# and require the merged CSV to be bit-for-bit identical to an
# uninterrupted serial in-process run. A second leg checks that
# permanent failures produce a deterministic quarantine report.
#
# Usage: scripts/chaos_resume.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
FIG10="$BUILD/bench/fig10_synthetic_sweep"
SIM="$BUILD/tools/catnap_sim"
[ -x "$FIG10" ] && [ -x "$SIM" ] ||
  { echo "error: build $FIG10 and $SIM first" >&2; exit 2; }

WORK="$(mktemp -d chaos_resume.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT
JOURNAL="$WORK/fig10.journal"

journal_bytes() { stat -c %s "$JOURNAL" 2>/dev/null || echo 0; }

echo "== leg 1: uninterrupted serial baseline =="
"$FIG10" --jobs 1 --csv "$WORK/baseline.csv" > /dev/null

echo "== leg 2: isolated sweep, kill a worker, then the supervisor =="
"$FIG10" --isolate --jobs 1 --journal "$JOURNAL" --scratch "$WORK/scratch" \
  --csv "$WORK/interrupted.csv" > /dev/null 2>&1 &
SUP=$!

# Wait for the first journalled point so the resume has work to skip.
for _ in $(seq 1 300); do
  [ "$(journal_bytes)" -gt 0 ] && break
  kill -0 "$SUP" 2>/dev/null || { echo "error: supervisor died early" >&2; exit 1; }
  sleep 0.1
done
[ "$(journal_bytes)" -gt 0 ] || { echo "error: journal never grew" >&2; exit 1; }

# SIGKILL one in-flight worker; the supervisor must retry it invisibly.
for _ in $(seq 1 50); do
  WPID="$(pgrep -f -- '--worker-spec' | head -n 1 || true)"
  if [ -n "$WPID" ]; then
    kill -KILL "$WPID" 2>/dev/null || true
    echo "killed worker pid $WPID"
    break
  fi
  sleep 0.1
done

# Let the sweep make more progress, then SIGKILL the supervisor itself,
# possibly mid-journal-append (the scan tolerates a torn tail).
GROWN=$(( $(journal_bytes) + 1 ))
for _ in $(seq 1 300); do
  [ "$(journal_bytes)" -ge "$GROWN" ] && break
  kill -0 "$SUP" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SUP" 2>/dev/null; then
  kill -KILL "$SUP" 2>/dev/null || true
  echo "killed supervisor pid $SUP with $(journal_bytes) journal bytes"
fi
wait "$SUP" 2>/dev/null || true
[ ! -f "$WORK/interrupted.csv" ] ||
  { echo "error: interrupted run was not actually interrupted" >&2; exit 1; }

echo "== leg 3: resume from the journal =="
"$FIG10" --isolate --jobs 1 --resume --journal "$JOURNAL" \
  --scratch "$WORK/scratch" --csv "$WORK/resumed.csv" \
  > /dev/null 2> "$WORK/resume.stderr"
grep -o '[0-9]* point(s) from journal' "$WORK/resume.stderr" ||
  { echo "error: no isolate status line on resume" >&2; exit 1; }
REPLAYED="$(grep -o '[0-9]* point(s) from journal' "$WORK/resume.stderr" |
            grep -o '^[0-9]*')"
[ "$REPLAYED" -gt 0 ] ||
  { echo "error: resume replayed nothing from the journal" >&2; exit 1; }

cmp "$WORK/baseline.csv" "$WORK/resumed.csv" ||
  { echo "error: resumed CSV differs from uninterrupted baseline" >&2; exit 1; }
echo "resumed CSV is bit-for-bit identical to the serial baseline"

echo "== leg 4: quarantine report is deterministic =="
QARGS=(--subnets 2 --gating catnap --loads 0.05,0.10 --warmup 200
       --measure 600 --isolate --worker /bin/false
       --scratch "$WORK/qscratch" --point-retries 1)
set +e
"$SIM" "${QARGS[@]}" > /dev/null 2> "$WORK/q1.stderr"; RC1=$?
"$SIM" "${QARGS[@]}" > /dev/null 2> "$WORK/q2.stderr"; RC2=$?
set -e
[ "$RC1" -eq 4 ] && [ "$RC2" -eq 4 ] ||
  { echo "error: expected exit 4 (quarantine), got $RC1/$RC2" >&2; exit 1; }
cmp "$WORK/q1.stderr" "$WORK/q2.stderr" ||
  { echo "error: quarantine summary is not deterministic" >&2; exit 1; }
echo "quarantine exits 4 with an identical summary across runs"

echo "chaos_resume: all legs passed"
