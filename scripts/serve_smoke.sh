#!/usr/bin/env bash
# Smoke drill for the sweep service (DESIGN.md §17): start catnap_serve,
# run the Figure 10 sweep through it twice, and require
#   - both passes' CSVs bit-for-bit identical to the serial in-process
#     run;
#   - the second (warm-cache) pass answered entirely from the cache:
#     every point a hit, zero points executed;
#   - a SIGKILLed daemon restarted on the same cache file rebuilds its
#     index from the journal and serves the whole sweep as hits again —
#     with the client riding its retry loop across the restart.
# The daemon's stats JSON is left in $WORK for CI to upload.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR] [WORK_DIR]
#   BUILD_DIR  default: build
#   WORK_DIR   default: a fresh mktemp dir (removed on exit); pass one
#              explicitly to keep stats.json as a CI artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
FIG10="$BUILD/bench/fig10_synthetic_sweep"
SERVE="$BUILD/tools/catnap_serve"
SIM="$BUILD/tools/catnap_sim"
[ -x "$FIG10" ] && [ -x "$SERVE" ] && [ -x "$SIM" ] ||
  { echo "error: build $FIG10, $SERVE and $SIM first" >&2; exit 2; }

if [ -n "${2:-}" ]; then
  WORK="$2"
  KEEP_WORK=1
  mkdir -p "$WORK"
else
  WORK="$(mktemp -d serve_smoke.XXXXXX)"
  KEEP_WORK=0
fi
SOCK="$WORK/serve.sock"
CACHE="$WORK/cache.bin"
STATS="$WORK/stats.json"
POINTS=36   # fig10: 4 configs x 9 loads

DPID=0
stop_daemon() {
  [ "$DPID" -gt 0 ] && kill "$DPID" 2>/dev/null && wait "$DPID" 2>/dev/null
  DPID=0
  return 0
}
cleanup() { stop_daemon; [ "$KEEP_WORK" -eq 1 ] || rm -rf "$WORK"; }
trap cleanup EXIT

# Reads one counter out of the daemon's stats file.
stat_of() { grep -o "\"$1\":[0-9]*" "$STATS" | head -n1 | cut -d: -f2; }

echo "== leg 1: serial in-process baseline =="
"$FIG10" --jobs 1 --csv "$WORK/serial.csv" > /dev/null

echo "== leg 2: cold pass through the daemon =="
"$SERVE" --socket "$SOCK" --cache "$CACHE" --stats-out "$STATS" \
  --jobs 2 2> "$WORK/daemon1.log" &
DPID=$!
"$FIG10" --serve "$SOCK" --csv "$WORK/cold.csv" 2> "$WORK/cold.stderr"
cmp "$WORK/serial.csv" "$WORK/cold.csv" ||
  { echo "error: cold served CSV differs from serial baseline" >&2; exit 1; }
grep -q "\[serve\] 0 hit(s), $POINTS executed" "$WORK/cold.stderr" ||
  { echo "error: cold pass should execute all $POINTS points" >&2;
    cat "$WORK/cold.stderr" >&2; exit 1; }

echo "== leg 3: warm pass must be all hits, zero executed =="
EXEC_BEFORE="$(stat_of executed)"
"$FIG10" --serve "$SOCK" --csv "$WORK/warm.csv" 2> "$WORK/warm.stderr"
cmp "$WORK/serial.csv" "$WORK/warm.csv" ||
  { echo "error: warm served CSV differs from serial baseline" >&2; exit 1; }
grep -q "\[serve\] $POINTS hit(s), 0 executed" "$WORK/warm.stderr" ||
  { echo "error: warm pass was not answered entirely from the cache" >&2;
    cat "$WORK/warm.stderr" >&2; exit 1; }
EXEC_AFTER="$(stat_of executed)"
[ "$EXEC_AFTER" -eq "$EXEC_BEFORE" ] ||
  { echo "error: warm pass executed $((EXEC_AFTER - EXEC_BEFORE)) points" >&2
    exit 1; }
HITS="$(stat_of hits)"
[ "$HITS" -ge "$POINTS" ] ||
  { echo "error: expected >= $POINTS cache hits, stats says $HITS" >&2
    exit 1; }
echo "warm pass: $POINTS/$POINTS hits, 0 executed"

echo "== leg 4: SIGKILL the daemon, restart, client rides the retry =="
kill -KILL "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=0
rm -f "$SOCK"   # SIGKILL cannot unlink its own socket

# The client starts first: it must retry until the restarted daemon
# binds, then be answered entirely from the rebuilt cache.
"$FIG10" --serve "$SOCK" --csv "$WORK/restart.csv" \
  2> "$WORK/restart.stderr" &
CPID=$!
sleep 1
"$SERVE" --socket "$SOCK" --cache "$CACHE" --stats-out "$STATS" \
  --jobs 2 2> "$WORK/daemon2.log" &
DPID=$!
wait "$CPID" ||
  { echo "error: client failed across the daemon restart" >&2;
    cat "$WORK/restart.stderr" >&2; exit 1; }
cmp "$WORK/serial.csv" "$WORK/restart.csv" ||
  { echo "error: post-restart CSV differs from serial baseline" >&2; exit 1; }
grep -q "\[serve\] $POINTS hit(s), 0 executed" "$WORK/restart.stderr" ||
  { echo "error: restarted daemon did not serve the sweep from its " \
         "rebuilt cache" >&2; cat "$WORK/restart.stderr" >&2; exit 1; }
grep -q "$POINTS cached point(s) restored" "$WORK/daemon2.log" ||
  { echo "error: restarted daemon did not restore $POINTS records" >&2;
    cat "$WORK/daemon2.log" >&2; exit 1; }
echo "restart: $POINTS records rebuilt, sweep served as hits"

echo "== leg 5: stats endpoint answers over the socket =="
"$SIM" --serve-stats "$SOCK" > "$WORK/stats_reply.json"
grep -q '"restored_records":'"$POINTS" "$WORK/stats_reply.json" ||
  { echo "error: --serve-stats reply missing restored_records" >&2;
    cat "$WORK/stats_reply.json" >&2; exit 1; }

stop_daemon
echo "serve_smoke: all legs passed (stats in $STATS)"
