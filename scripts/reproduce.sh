#!/usr/bin/env bash
# Reproduce every experiment: build, run the test suite, then regenerate
# every table/figure/ablation/extension into results/.
#
# Usage: scripts/reproduce.sh [--jobs N]
#   --jobs N   worker threads per bench harness (default: all cores).
#              Results are bit-identical for every value (DESIGN.md §12);
#              --jobs only changes wall-clock time.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      JOBS="$2"
      shift 2
      ;;
    *)
      echo "usage: $0 [--jobs N]" >&2
      exit 2
      ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build --output-on-failure -j"$(nproc)" 2>&1 |
  tee results/test_output.txt

{
  total_start=$(date +%s)
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "== $b =="
    start=$(date +%s%N)
    case "$(basename "$b")" in
      micro_simulator)
        # Google-benchmark harness: times single runs; no --jobs.
        "$b"
        ;;
      *)
        "$b" --jobs "$JOBS"
        ;;
    esac
    end=$(date +%s%N)
    echo "[time] $(basename "$b"): $(((end - start) / 1000000)) ms"
    if [ "$(basename "$b")" = "fig10_synthetic_sweep" ]; then
      # Throughput record for the Figure 10 sweep. The constants mirror
      # the harness: 4 configs x 9 loads (fig10_synthetic_sweep.cc) at
      # the shared phase lengths of bench_util.h sweep_params(); the
      # variable-length drain phase is excluded from the cycle count.
      ms=$(((end - start) / 1000000))
      points=36
      warmup=1500
      measure=5000
      sim_cycles=$((points * (warmup + measure)))
      cps=0
      [ "$ms" -gt 0 ] && cps=$((sim_cycles * 1000 / ms))
      warm_frac=$(awk -v w="$warmup" -v m="$measure" \
                  'BEGIN { printf "%.4f", w / (w + m) }')
      # Serve leg (DESIGN.md §17): the same sweep through catnap_serve,
      # cold (cache empty, every point executed by the daemon) then
      # warm (every point a cache hit, zero executed). Both CSVs must
      # be bit-identical to the in-process run; the cold/warm wall
      # clocks land in BENCH_fig10.json as the service's amortisation
      # record.
      SWORK="$(mktemp -d serve_repro.XXXXXX)"
      build/tools/catnap_serve --socket "$SWORK/s.sock" \
        --cache "$SWORK/cache.bin" --jobs "$JOBS" \
        2> "$SWORK/daemon.log" &
      SERVE_PID=$!
      "$b" --jobs 1 --csv "$SWORK/serial.csv" > /dev/null
      s0=$(date +%s%N)
      "$b" --serve "$SWORK/s.sock" --csv "$SWORK/cold.csv" > /dev/null
      s1=$(date +%s%N)
      "$b" --serve "$SWORK/s.sock" --csv "$SWORK/warm.csv" > /dev/null
      s2=$(date +%s%N)
      cmp "$SWORK/serial.csv" "$SWORK/cold.csv" &&
        cmp "$SWORK/serial.csv" "$SWORK/warm.csv" || {
        echo "ERROR: served fig10 CSV differs from the in-process run" >&2
        exit 1
      }
      kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
      serve_cold_ms=$(((s1 - s0) / 1000000))
      serve_warm_ms=$(((s2 - s1) / 1000000))
      rm -rf "$SWORK"
      echo "[serve] fig10 via catnap_serve: cold ${serve_cold_ms} ms," \
           "warm ${serve_warm_ms} ms (CSVs bit-identical)"
      printf '{\n  "bench": "fig10_synthetic_sweep",\n  "jobs": %s,\n  "points": %s,\n  "warmup_cycles_per_point": %s,\n  "measure_cycles_per_point": %s,\n  "warmup_fraction_of_point": %s,\n  "simulated_cycles_excl_drain": %s,\n  "wall_clock_ms": %s,\n  "cycles_per_sec": %s,\n  "serve_cold_wall_clock_ms": %s,\n  "serve_warm_wall_clock_ms": %s\n}\n' \
        "$JOBS" "$points" "$warmup" "$measure" "$warm_frac" \
        "$sim_cycles" "$ms" "$cps" "$serve_cold_ms" "$serve_warm_ms" \
        > results/BENCH_fig10.json || {
        echo "ERROR: failed to write results/BENCH_fig10.json" >&2
        exit 1
      }
      # A truncated or empty record is as bad as a missing one: the
      # checked-in copy is diffed in review, so fail loudly here
      # rather than committing garbage downstream.
      [ -s results/BENCH_fig10.json ] &&
        grep -q '"cycles_per_sec"' results/BENCH_fig10.json || {
        echo "ERROR: results/BENCH_fig10.json is empty or truncated" >&2
        exit 1
      }
      echo "[json] wrote results/BENCH_fig10.json"
    fi
    echo
  done
  total_end=$(date +%s)
  echo "[time] total bench wall-clock: $((total_end - total_start)) s" \
       "(--jobs $JOBS)"
} 2>&1 | tee results/bench_output.txt

echo "Done. See results/test_output.txt and results/bench_output.txt."
