#!/usr/bin/env bash
# Reproduce every experiment: build, run the test suite, then regenerate
# every table/figure/ablation/extension into results/.
#
# Usage: scripts/reproduce.sh [--jobs N]
#   --jobs N   worker threads per bench harness (default: all cores).
#              Results are bit-identical for every value (DESIGN.md §12);
#              --jobs only changes wall-clock time.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      JOBS="$2"
      shift 2
      ;;
    *)
      echo "usage: $0 [--jobs N]" >&2
      exit 2
      ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build --output-on-failure -j"$(nproc)" 2>&1 |
  tee results/test_output.txt

{
  total_start=$(date +%s)
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "== $b =="
    start=$(date +%s%N)
    case "$(basename "$b")" in
      micro_simulator)
        # Google-benchmark harness: times single runs; no --jobs.
        "$b"
        ;;
      *)
        "$b" --jobs "$JOBS"
        ;;
    esac
    end=$(date +%s%N)
    echo "[time] $(basename "$b"): $(((end - start) / 1000000)) ms"
    echo
  done
  total_end=$(date +%s)
  echo "[time] total bench wall-clock: $((total_end - total_start)) s" \
       "(--jobs $JOBS)"
} 2>&1 | tee results/bench_output.txt

echo "Done. See results/test_output.txt and results/bench_output.txt."
