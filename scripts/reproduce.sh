#!/usr/bin/env bash
# Reproduce every experiment: build, run the test suite, then regenerate
# every table/figure/ablation/extension into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build --output-on-failure -j"$(nproc)" 2>&1 |
  tee results/test_output.txt

{
  for b in build/bench/*; do
    echo "== $b =="
    "$b"
    echo
  done
} 2>&1 | tee results/bench_output.txt

echo "Done. See results/test_output.txt and results/bench_output.txt."
