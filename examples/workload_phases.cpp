/**
 * @file
 * Full-system demo: run a 256-core CMP executing the Medium-Light
 * multiprogrammed mix on the Catnap Multi-NoC and watch subnets open
 * and close as application phases shift network demand.
 *
 * Prints an ASCII timeline: one row per 500 cycles showing how many
 * routers of each subnet are awake, the offered network load, and the
 * aggregate IPC in that window.
 */
#include <cstdio>

#include "app/system.h"

using namespace catnap;

namespace {

int
awake_routers(const MultiNoc &net, SubnetId s)
{
    int awake = 0;
    for (NodeId n = 0; n < net.num_nodes(); ++n)
        awake += net.router(s, n).power_state() != PowerState::kSleep;
    return awake;
}

char
gauge(int awake, int total)
{
    const double f = static_cast<double>(awake) / total;
    if (f > 0.9) return 'F'; // fully awake
    if (f > 0.6) return '#';
    if (f > 0.3) return '+';
    if (f > 0.05) return '.';
    return '_'; // asleep
}

} // namespace

int
main()
{
    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
    CmpSystem sys(cfg, medium_light_mix());

    std::printf("Medium-Light mix on %s; one row per 500 cycles.\n",
                cfg.label().c_str());
    std::printf("subnet gauge: F=all awake  #=>60%%  +=>30%%  .=few  "
                "_=asleep\n\n");
    std::printf("%-8s %-4s %-10s %10s %8s\n", "cycle", "s0123",
                "awake/subnet", "inj flits", "IPC");

    std::uint64_t last_retired = 0;
    std::uint64_t last_flits = 0;
    const int nodes = sys.net().num_nodes();
    for (int epoch = 0; epoch < 40; ++epoch) {
        sys.run(500);
        const auto &net = sys.net();
        char g[5] = {0};
        int awake[4];
        for (SubnetId s = 0; s < 4; ++s) {
            awake[s] = awake_routers(net, s);
            g[s] = gauge(awake[s], nodes);
        }
        const std::uint64_t retired = sys.total_retired();
        const std::uint64_t flits = net.metrics().injected_flits();
        std::printf("%-8llu %-4s %2d/%2d/%2d/%2d %10llu %8.2f\n",
                    static_cast<unsigned long long>(net.now()), g,
                    awake[0], awake[1], awake[2], awake[3],
                    static_cast<unsigned long long>(flits - last_flits),
                    static_cast<double>(retired - last_retired) / 500.0 /
                        256.0);
        last_retired = retired;
        last_flits = flits;
    }

    std::printf("\nfinal CSC: %.1f%% of router-cycles profitably gated\n",
                [&] {
                    sys.net().finalize_accounting();
                    return sys.net().csc_percent();
                }());
    return 0;
}
