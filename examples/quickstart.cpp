/**
 * @file
 * Quickstart: build the paper's 256-core Catnap Multi-NoC, drive it
 * with uniform-random traffic, and read back latency, throughput,
 * power, and compensated sleep cycles.
 *
 *   $ ./quickstart
 *
 * This walks the three layers of the public API:
 *   1. MultiNocConfig / MultiNoc  -- the network itself,
 *   2. SyntheticTraffic           -- open-loop traffic generation,
 *   3. PowerMeter / run_synthetic -- measurement.
 */
#include <cstdio>

#include "sim/simulator.h"

using namespace catnap;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Configure the network. multi_noc_config(4, kCatnap) is the
    //    paper's 4NT-128b-PG design: four 128-bit subnets over an 8x8
    //    concentrated mesh (256 cores), Catnap subnet selection with
    //    BFM congestion detection, and RCS-coupled power gating.
    // ------------------------------------------------------------------
    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
    std::printf("network: %s, %dx%d cmesh, %d cores, %d-bit subnets\n",
                cfg.label().c_str(), cfg.mesh_width, cfg.mesh_height,
                cfg.mesh_width * cfg.mesh_height * cfg.concentration,
                cfg.subnet_link_bits());

    // ------------------------------------------------------------------
    // 2. The one-call experiment harness: warm up, measure, drain.
    // ------------------------------------------------------------------
    SyntheticConfig traffic;
    traffic.pattern = PatternKind::kUniformRandom;

    RunParams phases; // defaults: 2000 warmup, 10000 measure cycles

    std::printf("\n%-8s %10s %10s %10s %8s %8s\n", "load", "accepted",
                "latency", "power(W)", "CSC(%)", "Vdd");
    for (double load : {0.01, 0.05, 0.15, 0.30}) {
        traffic.load = load;
        const SyntheticResult r = run_synthetic(cfg, traffic, phases);
        std::printf("%-8.2f %10.3f %10.1f %10.1f %8.1f %8.3f\n",
                    r.offered_load, r.accepted_rate, r.avg_latency,
                    r.power.total(), r.csc_percent, r.vdd);
    }

    // ------------------------------------------------------------------
    // 3. Or drive the network cycle by cycle yourself.
    // ------------------------------------------------------------------
    MultiNoc net(cfg);
    net.ni(63).set_packet_sink([](const Flit &tail, Cycle now) {
        std::printf("\npacket %llu delivered at cycle %llu "
                    "(%llu cycles after creation)\n",
                    static_cast<unsigned long long>(tail.pkt),
                    static_cast<unsigned long long>(now),
                    static_cast<unsigned long long>(now - tail.created));
    });

    PacketDesc pkt;
    pkt.id = 1;
    pkt.src = 0;   // top-left node
    pkt.dst = 63;  // bottom-right node, 14 hops away
    pkt.size_bits = 512;
    pkt.created = net.now();
    net.offer_packet(pkt);
    net.run(100);

    std::printf("router (subnet 3, node 0) is %s -- higher-order subnets"
                " sleep when idle\n",
                power_state_name(net.router(3, 0).power_state()));
    return 0;
}
