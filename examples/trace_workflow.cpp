/**
 * @file
 * Trace workflow: record a bursty workload once, save it as a text
 * trace, then replay the identical packet stream against three network
 * designs and export the comparison as CSV — the standard methodology
 * for apples-to-apples design studies (and exactly how the paper used
 * its Pin traces).
 */
#include <cstdio>

#include "power/power_meter.h"
#include "power/voltage.h"
#include "sim/report.h"
#include "traffic/trace.h"

using namespace catnap;

namespace {

/** Replays @p trace on @p cfg and measures latency / power / CSC. */
SyntheticResult
replay_on(const MultiNocConfig &cfg, const Trace &trace)
{
    MultiNoc net(cfg);
    net.metrics().set_measurement_window(0, kNoCycle);
    TraceTraffic replay(&net, &trace);
    PowerMeter meter(net, VoltageModel::min_voltage_for(
                              cfg.subnet_link_bits(), 2.0));
    meter.begin();
    while (!replay.done() || !net.quiescent()) {
        replay.step(net.now());
        net.tick();
    }
    net.finalize_accounting();

    SyntheticResult r;
    r.config_label = cfg.label();
    r.avg_latency = net.metrics().total_latency().mean();
    r.p99_latency = net.metrics().latency_histogram().quantile(0.99);
    r.csc_percent = meter.csc_percent();
    r.power = meter.report();
    r.power_static = meter.report_static();
    r.vdd = meter.vdd();
    r.measured_packets = net.metrics().ejected_packets();
    return r;
}

} // namespace

int
main()
{
    // ------------------------------------------------------------------
    // 1. Record: per-node bursty traffic at a Light-ish average load.
    // ------------------------------------------------------------------
    TraceRecorder recorder;
    {
        MultiNoc net(multi_noc_config(4));
        SyntheticConfig traffic;
        traffic.load = 0.04;
        traffic.node_bursts = true; // independent ON/OFF phases per node
        SyntheticTraffic gen(&net, traffic, 2026);
        gen.set_recorder(&recorder);
        for (Cycle c = 0; c < 6000; ++c) {
            gen.step(net.now());
            net.tick();
        }
    }
    const std::string path = "/tmp/catnap_bursty.trace";
    recorder.save(path);
    std::printf("recorded %zu packets over 6000 cycles -> %s\n",
                recorder.records().size(), path.c_str());

    // ------------------------------------------------------------------
    // 2. Replay the identical stream against three designs.
    // ------------------------------------------------------------------
    const Trace trace = Trace::load(path);
    std::vector<SyntheticResult> rows;
    for (const MultiNocConfig &cfg :
         {single_noc_config(512),
          single_noc_config(512, GatingKind::kIdle),
          multi_noc_config(4, GatingKind::kCatnap)}) {
        rows.push_back(replay_on(cfg, trace));
    }

    std::printf("\n%-14s %10s %10s %8s %10s\n", "design", "latency",
                "p99", "CSC(%)", "power(W)");
    for (const auto &r : rows) {
        std::printf("%-14s %10.1f %10.1f %8.1f %10.1f\n",
                    r.config_label.c_str(), r.avg_latency, r.p99_latency,
                    r.csc_percent, r.power.total());
    }

    // ------------------------------------------------------------------
    // 3. Export for plotting.
    // ------------------------------------------------------------------
    const std::string csv = "/tmp/catnap_trace_comparison.csv";
    save_csv(csv, rows);
    std::printf("\nCSV written to %s\n", csv.c_str());
    return 0;
}
