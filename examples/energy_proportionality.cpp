/**
 * @file
 * Energy proportionality demo: the paper's thesis is that a Multi-NoC
 * with Catnap gating consumes power *proportional to network demand*,
 * while a Single-NoC pays a high leakage floor regardless of load.
 *
 * This example sweeps offered load and prints power alongside an ASCII
 * bar per design, plus the "proportionality gap": power at near-idle as
 * a fraction of power at high load (1.0 would be a pure leakage brick,
 * lower is more proportional).
 */
#include <cstdio>
#include <string>

#include "sim/simulator.h"

using namespace catnap;

namespace {

std::string
bar(double watts, double per_char = 1.5)
{
    return std::string(static_cast<std::size_t>(watts / per_char), '#');
}

} // namespace

int
main()
{
    const std::vector<std::pair<const char *, MultiNocConfig>> designs = {
        {"1NT-512b     ", single_noc_config(512)},
        {"1NT-512b-PG  ", single_noc_config(512, GatingKind::kIdle)},
        {"4NT-128b-PG  ", multi_noc_config(4, GatingKind::kCatnap)},
    };

    RunParams phases;
    phases.measure = 6000;
    SyntheticConfig traffic;

    std::printf("Network power vs offered load (uniform random)\n");
    std::printf("each '#' is 1.5 W\n\n");

    std::vector<double> idle_power(designs.size());
    std::vector<double> busy_power(designs.size());
    for (double load : {0.005, 0.05, 0.15, 0.30}) {
        std::printf("-- load %.3f packets/node/cycle --\n", load);
        for (std::size_t d = 0; d < designs.size(); ++d) {
            traffic.load = load;
            const auto r = run_synthetic(designs[d].second, traffic,
                                         phases);
            std::printf("  %s %6.1f W  %s\n", designs[d].first,
                        r.power.total(), bar(r.power.total()).c_str());
            if (load == 0.005)
                idle_power[d] = r.power.total();
            if (load == 0.30)
                busy_power[d] = r.power.total();
        }
    }

    std::printf("\nProportionality gap (near-idle power / busy power, "
                "lower is better):\n");
    for (std::size_t d = 0; d < designs.size(); ++d) {
        std::printf("  %s %.2f\n", designs[d].first,
                    idle_power[d] / busy_power[d]);
    }
    std::printf("\nThe Catnap Multi-NoC approaches energy-proportional "
                "operation: its near-idle power is dominated by one "
                "always-on subnet instead of the whole network.\n");
    return 0;
}
