/**
 * @file
 * Policy playground: shows how to assemble custom Catnap configurations
 * — selector kind, gating kind, congestion metric, thresholds, RCS
 * on/off — and compares them side by side on one workload point.
 *
 * Use this as a template for exploring the design space beyond the
 * paper's configurations (e.g. different BFM thresholds or region
 * sizes).
 */
#include <cstdio>

#include "sim/simulator.h"

using namespace catnap;

namespace {

MultiNocConfig
custom(SelectorKind sel, GatingKind gate, CongestionMetric metric,
       double threshold, bool use_rcs, int region_width = 4)
{
    MultiNocConfig cfg = multi_noc_config(4, gate, sel);
    cfg.congestion.metric = metric;
    cfg.congestion.threshold = threshold;
    cfg.congestion.use_rcs = use_rcs;
    cfg.region_width = region_width;
    return cfg;
}

} // namespace

int
main()
{
    RunParams phases;
    phases.measure = 6000;
    SyntheticConfig traffic;
    traffic.pattern = PatternKind::kTranspose; // adversarial pattern
    traffic.load = 0.10;

    struct Entry
    {
        const char *name;
        MultiNocConfig cfg;
    };
    const std::vector<Entry> entries = {
        {"RR + idle gating (baseline)",
         multi_noc_config(4, GatingKind::kIdle, SelectorKind::kRoundRobin)},
        {"Catnap, BFM thr 9, RCS (paper)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 9.0, true)},
        {"Catnap, BFM thr 5 (eager spill)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 5.0, true)},
        {"Catnap, BFM thr 13 (lazy spill)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 13.0, true)},
        {"Catnap, BFM local only (no OR net)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 9.0, false)},
        {"Catnap, 2x2 regions (finer RCS)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 9.0, true, 2)},
        {"Catnap, 8x8 region (global OR)",
         custom(SelectorKind::kCatnap, GatingKind::kCatnap,
                CongestionMetric::kBufferMax, 9.0, true, 8)},
    };

    std::printf("transpose traffic @ %.2f packets/node/cycle\n\n",
                traffic.load);
    std::printf("%-38s %10s %10s %8s %9s\n", "configuration", "latency",
                "power(W)", "CSC(%)", "accepted");
    for (const auto &e : entries) {
        const auto r = run_synthetic(e.cfg, traffic, phases);
        std::printf("%-38s %10.1f %10.1f %8.1f %9.3f\n", e.name,
                    r.avg_latency, r.power.total(), r.csc_percent,
                    r.accepted_rate);
    }

    std::printf("\nThings to notice:\n"
                "  - the baseline RR selector spreads traffic, so gating"
                " saves little;\n"
                "  - a too-eager threshold opens subnets early (power"
                " up, latency down);\n"
                "  - a too-lazy threshold risks latency spikes on"
                " adversarial patterns;\n"
                "  - RCS (the 1-bit OR network) matters most for"
                " non-uniform traffic.\n");
    return 0;
}
