/**
 * @file
 * Ablation: RCS region size. The paper partitions the 8x8 mesh into
 * four 4x4 regions; Section 7.3 argues a *regional* detector reacts
 * faster than a global one (used by prior off-chip work) while staying
 * far cheaper than per-path congestion propagation (RCA). This bench
 * sweeps region widths 2 / 4 / 8 (8 == one global OR network) plus the
 * purely local variant, on the adversarial transpose pattern where
 * early detection matters most.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Ablation: RCS region size (4NT-128b-PG, transpose)");

    const RunParams rp = bench::sweep_params();

    struct Variant
    {
        const char *name;
        int region_width;
        bool use_rcs;
    };
    const Variant variants[] = {
        {"local only", 4, false},
        {"2x2 regions", 2, true},
        {"4x4 regions (paper)", 4, true},
        {"8x8 region (global)", 8, true},
    };

    std::vector<MultiNocConfig> configs;
    for (const auto &v : variants) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.region_width = v.region_width;
        cfg.congestion.use_rcs = v.use_rcs;
        configs.push_back(cfg);
    }
    SyntheticConfig traffic;
    traffic.pattern = PatternKind::kTranspose;
    const auto res =
        bench::run_load_grid(configs, {0.05, 0.15}, traffic, rp, opts);

    std::printf("%-22s %9s %9s %9s %9s\n", "detector", "lat@0.05",
                "lat@0.15", "csc@0.05", "P@0.05");
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto &lo = res[c][0];
        const auto &hi = res[c][1];
        std::printf("%-22s %9.1f %9.1f %9.1f %9.1f\n", variants[c].name,
                    lo.avg_latency, hi.avg_latency, lo.csc_percent,
                    lo.power.total());
    }
    std::printf("\nLocal-only detection reacts too late on non-uniform"
                " traffic (latency spikes); a global OR wakes every"
                " region's routers on any hotspot (less CSC). 4x4 is the"
                " balance the paper picked.\n");
    return 0;
}
