/**
 * @file
 * Figure 10: uniform-random sweep of (a) network power, (b) compensated
 * sleep cycles, (c) accepted throughput, and (d) packet latency vs
 * offered load, for 1NT-512b and 4NT-128b with and without power gating.
 *
 * Paper shape: at 0.03 packets/node/cycle the Multi-NoC exposes ~74%
 * CSC vs ~10% for Single-NoC, giving 7.8 W vs 24.1 W; throughput is
 * unaffected by gating; Single-NoC's latency suffers badly at low load.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Figure 10: uniform random, power/CSC/throughput/latency"
                  " vs offered load");

    const RunParams rp = bench::sweep_params();
    SyntheticConfig traffic;

    const std::vector<std::pair<const char *, MultiNocConfig>> configs = {
        {"1NT-512b", single_noc_config(512)},
        {"4NT-128b", multi_noc_config(4, GatingKind::kAlwaysOn,
                                      SelectorKind::kRoundRobin)},
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap)},
    };

    std::vector<double> loads = {0.01, 0.03, 0.05, 0.10, 0.15,
                                 0.20, 0.25, 0.30, 0.40};

    // Collect everything once, print four sub-tables.
    std::vector<std::vector<SyntheticResult>> res(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (double load : loads) {
            traffic.load = load;
            res[c].push_back(run_synthetic(configs[c].second, traffic, rp));
        }
    }

    const char *sub[4] = {"(a) network power (W)",
                          "(b) compensated sleep cycles (%)",
                          "(c) accepted throughput (pkts/node/cycle)",
                          "(d) avg packet latency (cycles)"};
    for (int plot = 0; plot < 4; ++plot) {
        std::printf("\n-- %s --\n%-8s", sub[plot], "load");
        for (const auto &cfg : configs)
            std::printf(" %12s", cfg.first);
        std::printf("\n");
        for (std::size_t l = 0; l < loads.size(); ++l) {
            std::printf("%-8.2f", loads[l]);
            for (std::size_t c = 0; c < configs.size(); ++c) {
                const auto &r = res[c][l];
                const double v = plot == 0   ? r.power.total()
                                 : plot == 1 ? r.csc_percent
                                 : plot == 2 ? r.accepted_rate
                                             : r.avg_latency;
                std::printf(" %12.2f", v);
            }
            std::printf("\n");
        }
    }

    // Paper checks at load 0.03 (index 1).
    bench::paper_note("CSC @0.03, 4NT-128b-PG (%)", res[3][1].csc_percent,
                      74.0);
    bench::paper_note("CSC @0.03, 1NT-512b-PG (%)", res[2][1].csc_percent,
                      10.0);
    bench::paper_note("power @0.03, 4NT-128b-PG (W)",
                      res[3][1].power.total(), 7.8);
    bench::paper_note("power @0.03, 1NT-512b-PG (W)",
                      res[2][1].power.total(), 24.1);
    return 0;
}
