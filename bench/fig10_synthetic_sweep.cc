/**
 * @file
 * Figure 10: uniform-random sweep of (a) network power, (b) compensated
 * sleep cycles, (c) accepted throughput, and (d) packet latency vs
 * offered load, for 1NT-512b and 4NT-128b with and without power gating.
 *
 * Paper shape: at 0.03 packets/node/cycle the Multi-NoC exposes ~74%
 * CSC vs ~10% for Single-NoC, giving 7.8 W vs 24.1 W; throughput is
 * unaffected by gating; Single-NoC's latency suffers badly at low load.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 10: uniform random, power/CSC/throughput/latency"
                  " vs offered load");

    const RunParams rp = bench::sweep_params();
    const SyntheticConfig traffic;

    const std::vector<bench::NamedConfig> configs = {
        {"1NT-512b", single_noc_config(512)},
        {"4NT-128b", multi_noc_config(4, GatingKind::kAlwaysOn,
                                      SelectorKind::kRoundRobin)},
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap)},
    };

    const std::vector<double> loads = {0.01, 0.03, 0.05, 0.10, 0.15,
                                       0.20, 0.25, 0.30, 0.40};

    // Collect everything once (all points in parallel), print four
    // sub-tables.
    const auto res = bench::run_load_grid(configs, loads, traffic, rp,
                                          opts);
    const auto names = bench::config_names(configs);

    bench::print_metric_table(
        "(a) network power (W)", names, loads, res,
        [](const SyntheticResult &r) { return r.power.total(); });
    bench::print_metric_table(
        "(b) compensated sleep cycles (%)", names, loads, res,
        [](const SyntheticResult &r) { return r.csc_percent; });
    bench::print_metric_table(
        "(c) accepted throughput (pkts/node/cycle)", names, loads, res,
        [](const SyntheticResult &r) { return r.accepted_rate; });
    bench::print_metric_table(
        "(d) avg packet latency (cycles)", names, loads, res,
        [](const SyntheticResult &r) { return r.avg_latency; });
    bench::maybe_save_csv(opts, res);

    // Paper checks at load 0.03 (index 1).
    bench::paper_note("CSC @0.03, 4NT-128b-PG (%)", res[3][1].csc_percent,
                      74.0);
    bench::paper_note("CSC @0.03, 1NT-512b-PG (%)", res[2][1].csc_percent,
                      10.0);
    bench::paper_note("power @0.03, 4NT-128b-PG (W)",
                      res[3][1].power.total(), 7.8);
    bench::paper_note("power @0.03, 1NT-512b-PG (W)",
                      res[2][1].power.total(), 24.1);
    return 0;
}
