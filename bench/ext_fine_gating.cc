/**
 * @file
 * Extension study: fine-grained per-port power gating (Matsutani et al.
 * [20]) as a stronger Single-NoC baseline. Section 7.1 positions such
 * techniques as complementary: they improve Single-NoC, but a single
 * network's crossbar/clock/control can never gate while any flow is
 * alive, so whole-subnet gating (Catnap) remains far ahead.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Extension: per-port gating (1NT-512b-PPG) vs "
                  "router-idle PG vs Catnap");

    const RunParams rp = bench::sweep_params();

    const std::vector<std::pair<const char *, MultiNocConfig>> configs = {
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"1NT-512b-PPG", single_noc_config(512, GatingKind::kFinePort)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap)},
    };

    std::printf("%-8s", "load");
    for (const auto &c : configs)
        std::printf(" | %12s: %7s %7s", c.first, "P(W)", "lat");
    std::printf("\n");

    double p_idle = 0, p_fine = 0, p_catnap = 0;
    for (double load : {0.01, 0.03, 0.05, 0.10, 0.20}) {
        std::printf("%-8.2f", load);
        for (const auto &c : configs) {
            SyntheticConfig traffic;
            traffic.load = load;
            const auto r = run_synthetic(c.second, traffic, rp);
            std::printf(" | %12s  %7.1f %7.1f", "", r.power.total(),
                        r.avg_latency);
            if (load == 0.03) {
                if (c.second.gating == GatingKind::kIdle)
                    p_idle = r.power.total();
                else if (c.second.gating == GatingKind::kFinePort)
                    p_fine = r.power.total();
                else
                    p_catnap = r.power.total();
            }
        }
        std::printf("\n");
    }

    bench::paper_note("PPG saving over router-idle PG @0.03 (W)",
                      p_idle - p_fine, 5.0);
    bench::paper_note("Catnap still below PPG @0.03 (ratio)",
                      p_catnap / p_fine, 0.5);
    std::printf("\nPer-port gating recovers part of the buffer/link"
                " leakage on a Single-NoC at a latency premium (every"
                " hop's input port must wake), but the shared crossbar,"
                " clock, and control stay powered -- only the Multi-NoC"
                " organization lets whole routers disappear.\n");
    return 0;
}
