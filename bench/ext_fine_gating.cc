/**
 * @file
 * Extension study: fine-grained per-port power gating (Matsutani et al.
 * [20]) as a stronger Single-NoC baseline. Section 7.1 positions such
 * techniques as complementary: they improve Single-NoC, but a single
 * network's crossbar/clock/control can never gate while any flow is
 * alive, so whole-subnet gating (Catnap) remains far ahead.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Extension: per-port gating (1NT-512b-PPG) vs "
                  "router-idle PG vs Catnap");

    const RunParams rp = bench::sweep_params();

    const std::vector<bench::NamedConfig> configs = {
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"1NT-512b-PPG", single_noc_config(512, GatingKind::kFinePort)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap)},
    };

    const std::vector<double> loads = {0.01, 0.03, 0.05, 0.10, 0.20};
    const auto res = bench::run_load_grid(configs, loads,
                                          SyntheticConfig{}, rp, opts);

    std::printf("%-8s", "load");
    for (const auto &c : configs)
        std::printf(" | %12s: %7s %7s", c.first, "P(W)", "lat");
    std::printf("\n");

    double p_idle = 0, p_fine = 0, p_catnap = 0;
    for (std::size_t l = 0; l < loads.size(); ++l) {
        std::printf("%-8.2f", loads[l]);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &r = res[c][l];
            std::printf(" | %12s  %7.1f %7.1f", "", r.power.total(),
                        r.avg_latency);
            if (loads[l] == 0.03) {
                if (configs[c].second.gating == GatingKind::kIdle)
                    p_idle = r.power.total();
                else if (configs[c].second.gating == GatingKind::kFinePort)
                    p_fine = r.power.total();
                else
                    p_catnap = r.power.total();
            }
        }
        std::printf("\n");
    }
    bench::maybe_save_csv(opts, res);

    bench::paper_note("PPG saving over router-idle PG @0.03 (W)",
                      p_idle - p_fine, 5.0);
    bench::paper_note("Catnap still below PPG @0.03 (ratio)",
                      p_catnap / p_fine, 0.5);
    std::printf("\nPer-port gating recovers part of the buffer/link"
                " leakage on a Single-NoC at a latency premium (every"
                " hop's input port must wake), but the shared crossbar,"
                " clock, and control stay powered -- only the Multi-NoC"
                " organization lets whole routers disappear.\n");
    return 0;
}
