/**
 * @file
 * Extension study: graceful degradation under staggered hard faults.
 *
 * Catnap's energy proportionality comes from redundancy -- several
 * narrow subnets instead of one wide network -- and the same redundancy
 * is a fault-tolerance budget. This harness kills k = 0..3 routers
 * mid-run (one per subnet, highest subnet first, so the baseline subnet
 * 0 is always last to go) and reports how latency, power, and delivery
 * degrade as the Multi-NoC sheds subnets.
 *
 * Expected shape: every offered packet is still delivered up to k = 3
 * (the survivors absorb the load at 0.10 pkts/node/cycle with room to
 * spare), latency and per-packet energy rise as the subnet pool
 * shrinks, and CSC falls because fewer healthy subnets are left to
 * sleep. Retransmits count the packets that died with a subnet and were
 * re-sent end-to-end on a healthy one.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

namespace {

struct KillSite {
    Cycle at;
    SubnetId subnet;
    NodeId node;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Extension: fault resilience, staggered router kills "
                  "(8x8, 4NT-128b-PG, uniform 0.10)");

    // Kills land mid-measurement, highest subnet first; subnet 0 (the
    // never-sleep baseline) survives every scenario here.
    const KillSite kills[] = {
        {6000, 3, 40},
        {10000, 2, 9},
        {14000, 1, 52},
    };

    RunParams rp;
    rp.warmup = bench::kSweepWarmup;
    rp.measure = 20000;
    rp.drain_max = 30000;

    std::vector<RunItem> items;
    for (int k = 0; k <= 3; ++k) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        for (int j = 0; j < k; ++j)
            cfg.fault.kill_router(kills[j].at, kills[j].subnet,
                                  kills[j].node);
        // Tighten the end-to-end deadline so packets stranded by a kill
        // are re-sent (and the run drains) well inside drain_max.
        cfg.fault.tuning.packet_timeout = 2000;

        SyntheticConfig traffic;
        traffic.load = 0.10;
        items.push_back(RunItem{cfg, traffic, rp});
    }
    const auto res = run_batch(items, bench::exec_options(opts));

    std::printf("%-6s | %8s %8s %8s %8s | %8s %8s %9s\n", "kills",
                "lat", "p99", "power", "csc%", "retrans", "dropped",
                "delivered");
    double lat_k0 = 0.0, lat_k3 = 0.0;
    for (int k = 0; k <= 3; ++k) {
        const SyntheticResult &r = res[static_cast<std::size_t>(k)];
        const double delivered =
            r.offered_rate > 0.0
                ? 100.0 * r.accepted_rate / r.offered_rate
                : 0.0;
        std::printf("%-6d | %8.1f %8.1f %8.2f %8.1f | %8llu %8llu "
                    "%8.1f%%%s\n",
                    k, r.avg_latency, r.p99_latency, r.power.total(),
                    r.csc_percent,
                    static_cast<unsigned long long>(r.retransmits),
                    static_cast<unsigned long long>(r.dropped_packets),
                    delivered, r.drained ? "" : "  [drain timeout]");
        if (k == 0)
            lat_k0 = r.avg_latency;
        if (k == 3)
            lat_k3 = r.avg_latency;
    }
    bench::paper_note("latency cost of losing 3 of 4 subnets (cycles)",
                      lat_k3 - lat_k0, 0.0);
    return 0;
}
