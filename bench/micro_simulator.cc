/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: cycles per
 * second for the main configurations, router allocation hot paths, and
 * the congestion detector. These guard the engineering quality of the
 * simulator rather than reproducing a paper figure.
 */
#include <benchmark/benchmark.h>

#include "app/system.h"
#include "noc/multinoc.h"
#include "traffic/synthetic.h"

namespace catnap {
namespace {

void
BM_IdleNetworkTick(benchmark::State &state)
{
    MultiNoc net(multi_noc_config(static_cast<int>(state.range(0))));
    for (auto _ : state)
        net.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IdleNetworkTick)->Arg(1)->Arg(4);

void
BM_GatedIdleNetworkTick(benchmark::State &state)
{
    MultiNoc net(multi_noc_config(4, GatingKind::kCatnap));
    net.run(100); // reach steady gated state
    for (auto _ : state)
        net.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GatedIdleNetworkTick);

void
BM_LoadedNetworkTick(benchmark::State &state)
{
    MultiNoc net(multi_noc_config(4));
    SyntheticConfig traffic;
    traffic.load = static_cast<double>(state.range(0)) / 100.0;
    SyntheticTraffic gen(&net, traffic, 5);
    for (Cycle c = 0; c < 500; ++c) {
        gen.step(net.now());
        net.tick();
    }
    for (auto _ : state) {
        gen.step(net.now());
        net.tick();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LoadedNetworkTick)->Arg(5)->Arg(20)->Arg(40);

void
BM_CmpSystemTick(benchmark::State &state)
{
    CmpSystem sys(multi_noc_config(4, GatingKind::kCatnap),
                  medium_light_mix());
    sys.run(500);
    for (auto _ : state)
        sys.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmpSystemTick);

void
BM_SingleNocSaturated(benchmark::State &state)
{
    MultiNoc net(single_noc_config(512));
    SyntheticConfig traffic;
    traffic.load = 0.45;
    SyntheticTraffic gen(&net, traffic, 5);
    for (Cycle c = 0; c < 500; ++c) {
        gen.step(net.now());
        net.tick();
    }
    for (auto _ : state) {
        gen.step(net.now());
        net.tick();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleNocSaturated);

} // namespace
} // namespace catnap

BENCHMARK_MAIN();
