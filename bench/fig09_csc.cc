/**
 * @file
 * Figure 9: percentage of compensated sleep cycles (CSC) for the three
 * power-gated configurations over the four Table 3 workloads.
 *
 * Paper shape: 4NT-128b-PG reaches ~70% CSC on Light and decays toward
 * ~10% on Heavy; the two Single-NoC PG designs barely break even.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 9: compensated sleep cycles (% of time)");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 8000;

    const std::vector<bench::NamedConfig> configs = {
        {"1NT-128b-PG", single_noc_config(128, GatingKind::kIdle)},
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap)},
    };

    const auto mixes = table3_mixes();
    SweepRunner runner(bench::exec_options(opts));
    const auto flat = runner.map<AppRunResult>(
        mixes.size() * configs.size(), [&](std::size_t i) {
            return run_app_workload(configs[i % configs.size()].second,
                                    mixes[i / configs.size()], ap);
        });

    std::printf("%-14s %14s %14s %14s\n", "workload", configs[0].first,
                configs[1].first, configs[2].first);

    double light_catnap = 0.0;
    double avg_catnap = 0.0;
    std::vector<double> avg(configs.size(), 0.0);
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::printf("%-14s", mixes[m].name.c_str());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &r = flat[m * configs.size() + c];
            std::printf(" %14.1f", r.csc_percent);
            avg[c] += r.csc_percent / static_cast<double>(mixes.size());
            if (c == 2 && mixes[m].name == "Light")
                light_catnap = r.csc_percent;
        }
        std::printf("\n");
    }
    std::printf("%-14s", "Average");
    for (std::size_t c = 0; c < configs.size(); ++c)
        std::printf(" %14.1f", avg[c]);
    std::printf("\n");
    avg_catnap = avg[2];

    bench::paper_note("Light CSC, 4NT-128b-PG (%)", light_catnap, 70.0);
    bench::paper_note("avg CSC, 4NT-128b-PG (%)", avg_catnap, 40.0);
    bench::paper_note("avg CSC, 1NT-512b-PG (%)", avg[1], 5.0);
    return 0;
}
