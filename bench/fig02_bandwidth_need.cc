/**
 * @file
 * Figure 2: normalized performance of a 256-core processor with a
 * 128-bit vs 512-bit Single-NoC, for the Light and Heavy workloads.
 *
 * Paper shape: the under-provisioned 128-bit network costs Heavy ~41%
 * of its performance while Light is nearly unaffected, establishing the
 * need to sustain today's 8 GB/s per-core bandwidth.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Figure 2: per-core bandwidth need (normalized perf)");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 10000;

    std::printf("%-14s %18s %18s %12s\n", "workload", "128b-Single-NoC",
                "512b-Single-NoC", "128b/512b");
    double heavy_ratio = 0.0, light_ratio = 0.0;
    for (const auto &mix : {light_mix(), heavy_mix()}) {
        const auto r128 =
            run_app_workload(single_noc_config(128), mix, ap);
        const auto r512 =
            run_app_workload(single_noc_config(512), mix, ap);
        const double ratio = r128.ipc / r512.ipc;
        std::printf("%-14s %18.3f %18.3f %12.3f\n", mix.name.c_str(),
                    ratio, 1.0, ratio);
        if (mix.name == "Heavy")
            heavy_ratio = ratio;
        else
            light_ratio = ratio;
    }
    bench::paper_note("Heavy loss on 128b network (%)",
                      100.0 * (1.0 - heavy_ratio), 41.0);
    bench::paper_note("Light loss on 128b network (%)",
                      100.0 * (1.0 - light_ratio), 2.0);
    return 0;
}
