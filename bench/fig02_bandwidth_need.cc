/**
 * @file
 * Figure 2: normalized performance of a 256-core processor with a
 * 128-bit vs 512-bit Single-NoC, for the Light and Heavy workloads.
 *
 * Paper shape: the under-provisioned 128-bit network costs Heavy ~41%
 * of its performance while Light is nearly unaffected, establishing the
 * need to sustain today's 8 GB/s per-core bandwidth.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 2: per-core bandwidth need (normalized perf)");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 10000;

    // Four independent closed-loop runs: {Light, Heavy} x {128b, 512b}.
    const std::vector<WorkloadMix> mixes = {light_mix(), heavy_mix()};
    SweepRunner runner(bench::exec_options(opts));
    const auto res = runner.map<AppRunResult>(
        mixes.size() * 2, [&](std::size_t i) {
            const int width = i % 2 == 0 ? 128 : 512;
            return run_app_workload(single_noc_config(width),
                                    mixes[i / 2], ap);
        });

    std::printf("%-14s %18s %18s %12s\n", "workload", "128b-Single-NoC",
                "512b-Single-NoC", "128b/512b");
    double heavy_ratio = 0.0, light_ratio = 0.0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &r128 = res[m * 2];
        const auto &r512 = res[m * 2 + 1];
        const double ratio = r128.ipc / r512.ipc;
        std::printf("%-14s %18.3f %18.3f %12.3f\n",
                    mixes[m].name.c_str(), ratio, 1.0, ratio);
        if (mixes[m].name == "Heavy")
            heavy_ratio = ratio;
        else
            light_ratio = ratio;
    }
    bench::paper_note("Heavy loss on 128b network (%)",
                      100.0 * (1.0 - heavy_ratio), 41.0);
    bench::paper_note("Light loss on 128b network (%)",
                      100.0 * (1.0 - light_ratio), 2.0);
    return 0;
}
