/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: aligned
 * table printing and the standard phase lengths used across benches.
 */
#ifndef CATNAP_BENCH_BENCH_UTIL_H
#define CATNAP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace catnap::bench {

/** Standard phases for synthetic sweeps (kept short; shapes converge). */
inline RunParams
sweep_params()
{
    RunParams rp;
    rp.warmup = 1500;
    rp.measure = 5000;
    rp.drain_max = 6000;
    return rp;
}

/** Offered-load grid used by the latency-vs-load figures. */
inline std::vector<double>
load_grid()
{
    return {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
}

/** Prints a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Prints a "shape check" note comparing against the paper's value. */
inline void
paper_note(const std::string &what, double measured, double paper)
{
    std::printf("  [paper] %-46s measured %8.2f vs paper %8.2f\n",
                what.c_str(), measured, paper);
}

} // namespace catnap::bench

#endif // CATNAP_BENCH_BENCH_UTIL_H
