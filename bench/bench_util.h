/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: aligned
 * table printing, the standard phase lengths used across benches, and
 * the common command line (--jobs/--csv) plus parallel-sweep plumbing
 * over the src/exec/ execution engine.
 *
 * Every harness accepts the same options:
 *   --jobs N    worker threads for independent simulation points
 *               (default: one per hardware thread; 1 = serial)
 *   --csv FILE  additionally save the harness's main sweep as CSV
 *
 * Results are bit-identical for every --jobs value: the grid helpers
 * fan run_synthetic()/run_app_workload() points out through
 * SweepRunner, which delivers result i into slot i regardless of which
 * worker computed it (see exec/sweep_runner.h and DESIGN.md §12). The
 * guarantee covers stdout (tables, CSV). Diagnostic log lines (stderr,
 * e.g. drain-budget warnings) are emitted by whichever worker hits
 * them, so their *order* follows host scheduling — the set of warnings
 * is still identical.
 */
#ifndef CATNAP_BENCH_BENCH_UTIL_H
#define CATNAP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/proc_runner.h"
#include "exec/sweep_runner.h"
#include "serve/client.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace catnap::bench {

/**
 * Warm-up length shared by every synthetic sweep harness. One constant,
 * not per-harness literals: the value flows into RunParams::warmup and
 * from there into the run-level checkpoint config hash (DESIGN.md §13),
 * so a warm state saved or forked under one warm-up length can never be
 * reused under another.
 */
inline constexpr Cycle kSweepWarmup = 1500;

/** Standard phases for synthetic sweeps (kept short; shapes converge). */
inline RunParams
sweep_params()
{
    RunParams rp;
    rp.warmup = kSweepWarmup;
    rp.measure = 5000;
    rp.drain_max = 6000;
    return rp;
}

/** Offered-load grid used by the latency-vs-load figures. */
inline std::vector<double>
load_grid()
{
    return {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
}

/** Prints a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Prints a "shape check" note comparing against the paper's value. */
inline void
paper_note(const std::string &what, double measured, double paper)
{
    std::printf("  [paper] %-46s measured %8.2f vs paper %8.2f\n",
                what.c_str(), measured, paper);
}

/** The command-line options every harness shares. */
struct BenchOptions
{
    /** Worker threads for independent points; 0 = all cores. */
    int jobs = 0;
    /** When non-empty, the harness saves its main sweep here. */
    std::string csv;
    /**
     * Warm up once per configuration (at the grid's first load) and
     * fork the warm state for every sweep point instead of re-warming
     * each point from cycle 0 (DESIGN.md §13). Points then measure
     * their own load on a checkpoint-forked copy; output equals a
     * from-scratch run that warmed at the same base load bit-for-bit.
     */
    bool fork_warmup = false;

    /**
     * Crash-isolated backend (DESIGN.md §15): run every grid point in
     * a supervised catnap_sim worker subprocess instead of in-process
     * threads. Output is bit-identical either way; --isolate adds
     * crash containment, per-point retry/quarantine, and (with
     * --journal) kill-and-resume. Incompatible with --fork-warmup
     * (a warm SyntheticRun cannot cross a process boundary).
     */
    bool isolate = false;

    /** Worker executable for --isolate; empty = <bench dir>/../tools/
     * catnap_sim (the build-tree layout). */
    std::string worker;

    /** Spec/result exchange directory for --isolate. */
    std::string scratch = ".catnap-scratch";

    /** Journal path for --isolate (empty = no journal). */
    std::string journal;

    /** Replay the journal's intact records, run only missing points. */
    bool resume = false;

    /** Per-attempt wall budget in ms for --isolate (0 = unlimited). */
    std::int64_t point_timeout_ms = 0;

    /** Extra attempts before quarantine for --isolate. */
    int point_retries = 2;

    /**
     * Sweep-service backend (DESIGN.md §17): resolve every grid point
     * against the catnap_serve daemon at this socket instead of
     * executing locally. Cached points replay from the daemon's
     * content-addressed result cache bit-identically; only novel
     * points execute (daemon-side). Incompatible with --fork-warmup
     * and --isolate — the daemon owns execution and persistence.
     */
    std::string serve;
};

/** Build-tree default worker: catnap_sim relative to the bench binary
 * (bench/ and tools/ are sibling output directories). */
inline std::string
default_worker_path(const char *argv0)
{
    const std::string self(argv0);
    const std::size_t slash = self.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : self.substr(0, slash);
    return dir + "/../tools/catnap_sim";
}

/**
 * Parses the shared harness command line. Unknown options are a hard
 * error (exit 2) so typos in reproduce.sh never pass silently.
 */
inline BenchOptions
parse_options(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const bool has_value = i + 1 < argc;
        if (a == "--jobs" && has_value) {
            opts.jobs = std::atoi(argv[++i]);
        } else if (a == "--csv" && has_value) {
            opts.csv = argv[++i];
        } else if (a == "--fork-warmup") {
            opts.fork_warmup = true;
        } else if (a == "--isolate") {
            opts.isolate = true;
        } else if (a == "--worker" && has_value) {
            opts.worker = argv[++i];
        } else if (a == "--scratch" && has_value) {
            opts.scratch = argv[++i];
        } else if (a == "--journal" && has_value) {
            opts.journal = argv[++i];
        } else if (a == "--resume") {
            opts.resume = true;
        } else if (a == "--point-timeout" && has_value) {
            opts.point_timeout_ms = std::atoll(argv[++i]);
        } else if (a == "--point-retries" && has_value) {
            opts.point_retries = std::atoi(argv[++i]);
        } else if (a == "--serve" && has_value) {
            opts.serve = argv[++i];
        } else if (a == "--help" || a == "-h") {
            std::printf("usage: %s [--jobs N] [--csv FILE] "
                        "[--fork-warmup]\n"
                        "          [--isolate [--worker PATH] [--scratch "
                        "DIR] [--journal FILE]\n"
                        "           [--resume] [--point-timeout MS] "
                        "[--point-retries N]]\n"
                        "  --jobs N   worker threads for independent "
                        "simulation points\n"
                        "             (default: one per hardware thread; "
                        "1 = serial)\n"
                        "  --csv FILE save the main sweep as CSV\n"
                        "  --fork-warmup\n"
                        "             warm up once per configuration and "
                        "fork the warm\n"
                        "             state for every load point "
                        "(checkpoint forking)\n"
                        "  --isolate  run every point in a supervised "
                        "catnap_sim worker\n"
                        "             subprocess (crash containment, "
                        "quarantine, and with\n"
                        "             --journal/--resume kill-and-resume; "
                        "DESIGN.md §15)\n"
                        "  --serve SOCKET\n"
                        "             resolve every point against the "
                        "catnap_serve daemon\n"
                        "             at SOCKET: cached points replay "
                        "bit-identically from\n"
                        "             its result cache, only novel points "
                        "execute\n"
                        "             (DESIGN.md §17)\n",
                        argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n",
                         argv[0], a.c_str());
            std::exit(2);
        }
    }
    if (opts.isolate && opts.fork_warmup) {
        std::fprintf(stderr, "%s: --isolate and --fork-warmup are "
                             "mutually exclusive (a warm in-process run "
                             "cannot cross the worker boundary)\n",
                     argv[0]);
        std::exit(2);
    }
    if (!opts.serve.empty() && (opts.isolate || opts.fork_warmup)) {
        std::fprintf(stderr, "%s: --serve is mutually exclusive with "
                             "--isolate and --fork-warmup (the daemon "
                             "owns execution and persistence)\n",
                     argv[0]);
        std::exit(2);
    }
    if (opts.resume && opts.journal.empty()) {
        std::fprintf(stderr, "%s: --resume requires --journal FILE\n",
                     argv[0]);
        std::exit(2);
    }
    if (opts.isolate && opts.worker.empty())
        opts.worker = default_worker_path(argv[0]);
    return opts;
}

/** Bridges the shared CLI options into an execution-engine policy. */
inline ExecOptions
exec_options(const BenchOptions &opts)
{
    ExecOptions eo;
    eo.jobs = opts.jobs;
    return eo;
}

/** A display name plus the network configuration it labels. */
using NamedConfig = std::pair<const char *, MultiNocConfig>;

/** Builds one sweep point: @p traffic with its load replaced. */
inline RunItem
point(const MultiNocConfig &cfg, SyntheticConfig traffic,
      const RunParams &rp, double load)
{
    traffic.load = load;
    return RunItem{cfg, traffic, rp};
}

/**
 * The --fork-warmup grid: one warm-up per configuration at the grid's
 * first load, then one checkpoint fork per point, each measuring its
 * own load. Forks are fanned out over the execution engine (fork() only
 * reads the warm run, so concurrent forks are safe); results land in
 * point order. Identity contract: grid[c][l] equals a from-scratch run
 * that warmed at loads[0] and measured at loads[l], bit-for-bit — see
 * tests/test_ckpt.cc.
 */
inline std::vector<std::vector<SyntheticResult>>
run_load_grid_forked(const std::vector<MultiNocConfig> &configs,
                     const std::vector<double> &loads,
                     const SyntheticConfig &traffic, const RunParams &rp,
                     const BenchOptions &opts)
{
    SweepRunner runner(exec_options(opts));
    std::vector<std::vector<SyntheticResult>> grid(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        SyntheticConfig base = traffic;
        base.load = loads.front();
        SyntheticRun warm(configs[c], base, rp);
        warm.run_warmup();
        grid[c] = runner.map<SyntheticResult>(
            loads.size(), [&warm, &loads](std::size_t l) {
                auto forked = warm.fork();
                forked->set_load(loads[l]);
                return forked->finish();
            });
    }
    return grid;
}

/**
 * Runs the full |configs| x |loads| cross product in parallel and
 * returns it config-major (grid[c][l]), bit-identical to the nested
 * serial loops this replaces. With --fork-warmup, each configuration
 * warms up once and every point measures on a checkpoint fork of the
 * warm state (see run_load_grid_forked()).
 */
inline std::vector<std::vector<SyntheticResult>>
run_load_grid(const std::vector<MultiNocConfig> &configs,
              const std::vector<double> &loads,
              const SyntheticConfig &traffic, const RunParams &rp,
              const BenchOptions &opts)
{
    if (opts.fork_warmup)
        return run_load_grid_forked(configs, loads, traffic, rp, opts);

    std::vector<RunItem> items;
    items.reserve(configs.size() * loads.size());
    for (const auto &cfg : configs)
        for (double load : loads)
            items.push_back(point(cfg, traffic, rp, load));

    std::vector<SyntheticResult> flat;
    if (!opts.serve.empty()) {
        // Sweep-service backend (DESIGN.md §17): same items, same
        // item-order results, bit-identical stdout — the daemon's cache
        // replays the exact bytes a local run would produce, and the
        // hit/miss summary goes to stderr so CSV/stdout diff clean
        // against the serial run. Quarantine and an unreachable daemon
        // are hard failures, mirroring the --isolate policy (exit 4)
        // plus a distinct code for connection trouble (exit 5).
        serve::ServeClientOptions copts;
        copts.socket_path = opts.serve;
        serve::ServedSweep sweep;
        try {
            sweep = serve::run_batch_served(items, copts);
        } catch (const serve::ServeError &e) {
            std::fprintf(stderr, "[serve] fatal: %s\n", e.what());
            std::exit(5);
        }
        std::fprintf(stderr,
                     "[serve] %zu hit(s), %zu executed, %zu quarantined\n",
                     sweep.hits, sweep.misses, sweep.quarantined);
        if (!sweep.ok()) {
            std::fputs(sweep.quarantine_summary().c_str(), stderr);
            std::exit(4);
        }
        flat = sweep.merged();
    } else if (opts.isolate) {
        // Crash-isolated backend: same items, same item-order results,
        // bit-identical output; quarantine is a hard failure for a
        // reproduction harness (a figure must never silently lose
        // points), reported deterministically then exit 4.
        ProcOptions po;
        po.worker = opts.worker;
        po.scratch_dir = opts.scratch;
        po.journal = opts.journal;
        po.resume = opts.resume;
        po.jobs = opts.jobs;
        po.max_retries = opts.point_retries;
        po.timeout_ms = opts.point_timeout_ms;
        ProcSweepResult sweep;
        try {
            ProcRunner runner(po);
            sweep = runner.run(items);
        } catch (const std::exception &e) {
            // Supervisor faults (unusable scratch dir, spawn failure,
            // corrupt journal path) — not per-point failures, which
            // quarantine instead.
            std::fprintf(stderr, "[isolate] fatal: %s\n", e.what());
            std::exit(1);
        }
        std::fprintf(stderr,
                     "[isolate] %zu worker(s) spawned, %zu point(s) "
                     "from journal, %zu quarantined\n",
                     sweep.spawned, sweep.from_journal, sweep.quarantined);
        if (!sweep.ok()) {
            std::fputs(sweep.quarantine_summary().c_str(), stderr);
            std::exit(4);
        }
        flat = sweep.merged();
    } else {
        flat = run_batch(items, exec_options(opts));
    }

    std::vector<std::vector<SyntheticResult>> grid(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto first =
            flat.begin() + static_cast<std::ptrdiff_t>(c * loads.size());
        grid[c].assign(first,
                       first + static_cast<std::ptrdiff_t>(loads.size()));
    }
    return grid;
}

/** run_load_grid() over named configurations. */
inline std::vector<std::vector<SyntheticResult>>
run_load_grid(const std::vector<NamedConfig> &configs,
              const std::vector<double> &loads,
              const SyntheticConfig &traffic, const RunParams &rp,
              const BenchOptions &opts)
{
    std::vector<MultiNocConfig> cfgs;
    cfgs.reserve(configs.size());
    for (const auto &c : configs)
        cfgs.push_back(c.second);
    return run_load_grid(cfgs, loads, traffic, rp, opts);
}

/**
 * Prints one metric sub-table: one row per load, one column per
 * configuration, values extracted by @p metric.
 */
inline void
print_metric_table(
    const std::string &title, const std::vector<std::string> &names,
    const std::vector<double> &loads,
    const std::vector<std::vector<SyntheticResult>> &grid,
    const std::function<double(const SyntheticResult &)> &metric,
    int col_width = 12, int precision = 2)
{
    std::printf("\n-- %s --\n%-8s", title.c_str(), "load");
    for (const auto &name : names)
        std::printf(" %*s", col_width, name.c_str());
    std::printf("\n");
    for (std::size_t l = 0; l < loads.size(); ++l) {
        std::printf("%-8.2f", loads[l]);
        for (std::size_t c = 0; c < names.size(); ++c)
            std::printf(" %*.*f", col_width, precision,
                        metric(grid[c][l]));
        std::printf("\n");
    }
}

/** Column names for print_metric_table() from a NamedConfig list. */
inline std::vector<std::string>
config_names(const std::vector<NamedConfig> &configs)
{
    std::vector<std::string> names;
    names.reserve(configs.size());
    for (const auto &c : configs)
        names.emplace_back(c.first);
    return names;
}

/**
 * Saves a config-major grid (flattened back to item order) when the
 * harness was invoked with --csv; no-op otherwise.
 */
inline void
maybe_save_csv(const BenchOptions &opts,
               const std::vector<std::vector<SyntheticResult>> &grid)
{
    if (opts.csv.empty())
        return;
    std::vector<SyntheticResult> rows;
    for (const auto &per_cfg : grid)
        rows.insert(rows.end(), per_cfg.begin(), per_cfg.end());
    save_csv(opts.csv, rows);
    std::printf("\n[csv] wrote %zu rows to %s\n", rows.size(),
                opts.csv.c_str());
}

} // namespace catnap::bench

#endif // CATNAP_BENCH_BENCH_UTIL_H
