/**
 * @file
 * Table 2: frequency and voltage of 512-bit and 128-bit routers. The
 * highlighted rows (512b @ 2 GHz @ 0.750 V; 128b @ 2 GHz @ 0.625 V) are
 * the operating points the evaluation uses.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "power/voltage.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    // Analytic (no simulation runs); accepts the shared CLI so
    // reproduce.sh can pass --jobs uniformly.
    bench::parse_options(argc, argv);
    bench::header("Table 2: router width vs frequency vs voltage");

    std::printf("%-12s %14s %16s %12s\n", "design", "width (bits)",
                "frequency (GHz)", "voltage (V)");
    struct Row
    {
        const char *design;
        int width;
        double vdd;
        bool highlighted;
    };
    const Row rows[] = {
        {"Single-NoC", 512, 0.750, true},
        {"Single-NoC", 512, 0.625, false},
        {"Multi-NoC", 128, 0.750, false},
        {"Multi-NoC", 128, 0.625, true},
    };
    for (const auto &row : rows) {
        const double f = VoltageModel::max_frequency_ghz(row.width,
                                                         row.vdd);
        std::printf("%-12s %14d %16.2f %12.3f%s\n", row.design, row.width,
                    f, row.vdd, row.highlighted ? "  <== used" : "");
    }

    bench::paper_note("512b @ 0.750V (GHz)",
                      VoltageModel::max_frequency_ghz(512, 0.750), 2.0);
    bench::paper_note("512b @ 0.625V (GHz)",
                      VoltageModel::max_frequency_ghz(512, 0.625), 1.4);
    bench::paper_note("128b @ 0.750V (GHz)",
                      VoltageModel::max_frequency_ghz(128, 0.750), 2.9);
    bench::paper_note("128b @ 0.625V (GHz)",
                      VoltageModel::max_frequency_ghz(128, 0.625), 2.0);

    std::printf("\nVoltage needed for 2 GHz by router width:\n");
    for (int width : {64, 128, 256, 512}) {
        std::printf("  %4d bits: %.3f V\n", width,
                    VoltageModel::min_voltage_for(width, 2.0));
    }
    return 0;
}
