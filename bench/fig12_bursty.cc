/**
 * @file
 * Figure 12: ramp-up and decay behaviour of Catnap under bursty
 * traffic. The offered load steps 0.01 -> 0.30 at cycle 1000 (until
 * 1500) and 0.01 -> 0.10 at cycle 2000 (until 2500); throughput is
 * sampled every 50 cycles.
 *
 * Paper shape: accepted throughput catches the offered burst within
 * ~200 cycles; during the 0.30 burst all four subnets activate and
 * spread load; the 0.10 burst only needs subnets 0 and 1; utilization
 * collapses back to subnet 0 after each burst.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "noc/multinoc.h"
#include "traffic/synthetic.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    // One continuous run with a time-varying schedule -- nothing to fan
    // out; accepts the shared CLI so reproduce.sh can pass --jobs.
    bench::parse_options(argc, argv);
    bench::header("Figure 12: bursty traffic ramp-up/decay (4NT-128b-PG)");

    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
    MultiNoc net(cfg);
    net.metrics().set_series_enabled(true);
    net.metrics().set_measurement_window(0, kNoCycle);

    SyntheticConfig traffic;
    traffic.load = 0.01;
    SyntheticTraffic gen(&net, traffic, 99);
    gen.set_schedule(figure12_burst_schedule());

    const Cycle horizon = 3200;
    while (net.now() < horizon) {
        gen.step(net.now());
        net.tick();
    }
    net.metrics().roll_series(horizon);

    const auto &offered = net.metrics().offered_series().samples();
    const auto &accepted = net.metrics().accepted_series().samples();

    std::printf("\n-- (a) offered vs accepted throughput "
                "(packets/node/cycle, 50-cycle windows) --\n");
    std::printf("%-8s %10s %10s\n", "cycle", "offered", "accepted");
    const double denom = 50.0 * net.num_nodes();
    for (std::size_t w = 0; w < offered.size(); ++w) {
        std::printf("%-8zu %10.3f %10.3f\n", (w + 1) * 50,
                    offered[w] / denom, accepted[w] / denom);
    }

    std::printf("\n-- (b) share of flits injected per subnet "
                "(50-cycle windows) --\n");
    std::printf("%-8s %9s %9s %9s %9s\n", "cycle", "subnet0", "subnet1",
                "subnet2", "subnet3");
    double burst1_spread = 0.0; // share of subnets 1-3 during burst 1
    double idle_share0 = 0.0;   // share of subnet 0 before the burst
    int idle_samples = 0, burst_samples = 0;
    for (std::size_t w = 0; w < offered.size(); ++w) {
        double per[4] = {0, 0, 0, 0};
        double total = 0;
        for (SubnetId s = 0; s < 4; ++s) {
            const auto &series = net.metrics().subnet_series(s).samples();
            per[s] = w < series.size() ? series[w] : 0.0;
            total += per[s];
        }
        std::printf("%-8zu", (w + 1) * 50);
        for (SubnetId s = 0; s < 4; ++s)
            std::printf(" %9.2f", total > 0 ? per[s] / total : 0.0);
        std::printf("\n");
        const Cycle mid = (w + 1) * 50 - 25;
        if (mid > 300 && mid < 1000 && total > 0) {
            idle_share0 += per[0] / total;
            ++idle_samples;
        }
        if (mid > 1100 && mid < 1500 && total > 0) {
            burst1_spread += (per[1] + per[2] + per[3]) / total;
            ++burst_samples;
        }
    }

    bench::paper_note("subnet-0 share before burst",
                      idle_samples ? idle_share0 / idle_samples : 0.0,
                      1.0);
    bench::paper_note("subnets 1-3 share during 0.30 burst",
                      burst_samples ? burst1_spread / burst_samples : 0.0,
                      0.75);
    return 0;
}
