/**
 * @file
 * Figure 7: network power by component (NI / Link / Clock / Control /
 * Crossbar / Buffer) for 1NT-512b @ 0.750 V, 4NT-128b @ 0.750 V, and
 * 4NT-128b @ 0.625 V at a per-port load factor of 0.5 (the paper's
 * analytic Orion methodology, Section 5.2).
 *
 * Paper shape: at the same voltage the Multi-NoC's smaller crossbars
 * and clock offset its duplicated control and longer links; voltage
 * scaling then gives Multi-NoC a clear dynamic-power win.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "power/power_meter.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    // Analytic (no simulation runs); accepts the shared CLI so
    // reproduce.sh can pass --jobs uniformly.
    bench::parse_options(argc, argv);
    bench::header("Figure 7: network power by component, load factor 0.5");

    struct Bar
    {
        const char *name;
        int subnets;
        int width;
        double vdd;
    };
    const Bar bars[] = {
        {"1NT-512b 0.750V", 1, 512, 0.750},
        {"4NT-128b 0.750V", 4, 128, 0.750},
        {"4NT-128b 0.625V", 4, 128, 0.625},
    };

    std::printf("%-18s %8s %8s %8s %8s %8s %8s %9s\n", "design", "Buffer",
                "Xbar", "Control", "Clock", "Link", "NI", "Total(W)");
    double single = 0.0, multi_hi = 0.0, multi_lo = 0.0;
    for (const auto &bar : bars) {
        const PowerBreakdown p = analytic_network_power(
            64, bar.subnets, bar.width, bar.vdd, 4, 4, 0.5);
        std::printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %9.1f\n",
                    bar.name, p.buffer, p.crossbar, p.control, p.clock,
                    p.link, p.ni, p.total());
        if (bar.subnets == 1)
            single = p.total();
        else if (bar.vdd > 0.7)
            multi_hi = p.total();
        else
            multi_lo = p.total();
    }

    bench::paper_note("1NT-512b total (W), paper bar ~70", single, 70.0);
    bench::paper_note("4NT @0.750V <= 1NT total (ratio)", multi_hi / single,
                      1.0);
    bench::paper_note("voltage scaling saving (4NT 0.625/0.750)",
                      multi_lo / multi_hi, 0.8);
    return 0;
}
