/**
 * @file
 * Ablation: message-class-specialized subnets (CCNoC style, [29]) vs
 * Catnap. Section 7.2 argues that statically separating traffic into
 * subnets by message type "could lead to load imbalance across subnets"
 * and squanders both peak bandwidth and gating opportunity; Catnap
 * instead uses VCs for deadlock freedom and selects subnets by load.
 * This bench quantifies the claim on the application workloads, where
 * the four message classes (request / forward / data / writeback) have
 * very different volumes.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

namespace {

/** Per-point metrics of one mix x config closed-loop run. */
struct PartitionPoint
{
    double ipc = 0.0;
    double power = 0.0;
    double csc = 0.0;
    double shares[4] = {0, 0, 0, 0};
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Ablation: class-partitioned subnets (CCNoC [29]) vs "
                  "Catnap");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 8000;

    const std::vector<bench::NamedConfig> configs = {
        {"4NT class-partitioned",
         multi_noc_config(4, GatingKind::kIdle,
                          SelectorKind::kClassPartition)},
        {"4NT round-robin + idle gate",
         multi_noc_config(4, GatingKind::kIdle,
                          SelectorKind::kRoundRobin)},
        {"4NT Catnap", multi_noc_config(4, GatingKind::kCatnap,
                                        SelectorKind::kCatnap)},
    };
    const std::vector<WorkloadMix> mixes = {medium_light_mix(),
                                            heavy_mix()};

    // Each point builds its own CmpSystem; fan them out, mix-major.
    SweepRunner runner(bench::exec_options(opts));
    const auto flat = runner.map<PartitionPoint>(
        mixes.size() * configs.size(), [&](std::size_t i) {
            const MultiNocConfig cfg = configs[i % configs.size()].second;
            CmpSystem sys(cfg, mixes[i / configs.size()]);
            sys.run(ap.warmup);
            PowerMeter meter(sys.net(), 0.625);
            meter.begin();
            const auto r0 = sys.total_retired();
            sys.run(ap.measure);
            sys.net().finalize_accounting();
            PartitionPoint p;
            p.ipc = static_cast<double>(sys.total_retired() - r0) /
                    static_cast<double>(ap.measure) / 256.0;
            p.power = meter.report().total();
            p.csc = meter.csc_percent();
            double total = 0;
            for (SubnetId s = 0; s < 4; ++s) {
                p.shares[s] = static_cast<double>(
                    sys.net().metrics().injected_flits_in_subnet(s));
                total += p.shares[s];
            }
            for (SubnetId s = 0; s < 4; ++s)
                p.shares[s] /= total;
            return p;
        });

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::printf("\n-- %s --\n", mixes[m].name.c_str());
        std::printf("%-30s %8s %10s %8s %28s\n", "design", "IPC",
                    "power(W)", "CSC(%)", "subnet flit shares");
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &p = flat[m * configs.size() + c];
            std::printf("%-30s %8.3f %10.1f %8.1f    "
                        "%.2f/%.2f/%.2f/%.2f\n",
                        configs[c].first, p.ipc, p.power, p.csc,
                        p.shares[0], p.shares[1], p.shares[2],
                        p.shares[3]);
        }
    }
    std::printf("\nClass partitioning leaves the data subnet saturated "
                "while control subnets idle (imbalance), and every "
                "subnet still carries some traffic, so gating saves "
                "little.\n");
    return 0;
}
