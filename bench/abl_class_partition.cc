/**
 * @file
 * Ablation: message-class-specialized subnets (CCNoC style, [29]) vs
 * Catnap. Section 7.2 argues that statically separating traffic into
 * subnets by message type "could lead to load imbalance across subnets"
 * and squanders both peak bandwidth and gating opportunity; Catnap
 * instead uses VCs for deadlock freedom and selects subnets by load.
 * This bench quantifies the claim on the application workloads, where
 * the four message classes (request / forward / data / writeback) have
 * very different volumes.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Ablation: class-partitioned subnets (CCNoC [29]) vs "
                  "Catnap");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 8000;

    const std::vector<std::pair<const char *, MultiNocConfig>> configs = {
        {"4NT class-partitioned",
         multi_noc_config(4, GatingKind::kIdle,
                          SelectorKind::kClassPartition)},
        {"4NT round-robin + idle gate",
         multi_noc_config(4, GatingKind::kIdle,
                          SelectorKind::kRoundRobin)},
        {"4NT Catnap", multi_noc_config(4, GatingKind::kCatnap,
                                        SelectorKind::kCatnap)},
    };

    for (const auto &mix : {medium_light_mix(), heavy_mix()}) {
        std::printf("\n-- %s --\n", mix.name.c_str());
        std::printf("%-30s %8s %10s %8s %28s\n", "design", "IPC",
                    "power(W)", "CSC(%)", "subnet flit shares");
        for (const auto &c : configs) {
            MultiNocConfig cfg = c.second;
            CmpSystem sys(cfg, mix);
            sys.run(ap.warmup);
            PowerMeter meter(sys.net(), 0.625);
            meter.begin();
            const auto r0 = sys.total_retired();
            sys.run(ap.measure);
            sys.net().finalize_accounting();
            const double ipc =
                static_cast<double>(sys.total_retired() - r0) /
                static_cast<double>(ap.measure) / 256.0;
            double shares[4];
            double total = 0;
            for (SubnetId s = 0; s < 4; ++s) {
                shares[s] = static_cast<double>(
                    sys.net().metrics().injected_flits_in_subnet(s));
                total += shares[s];
            }
            std::printf("%-30s %8.3f %10.1f %8.1f    "
                        "%.2f/%.2f/%.2f/%.2f\n",
                        c.first, ipc, meter.report().total(),
                        meter.csc_percent(), shares[0] / total,
                        shares[1] / total, shares[2] / total,
                        shares[3] / total);
        }
    }
    std::printf("\nClass partitioning leaves the data subnet saturated "
                "while control subnets idle (imbalance), and every "
                "subnet still carries some traffic, so gating saves "
                "little.\n");
    return 0;
}
