/**
 * @file
 * Ablation: power-gating hardware parameters. The paper's SPICE
 * analysis fixed T_wakeup = 10 cycles (3 hidden by look-ahead),
 * T_breakeven = 12 cycles, and T_idle_detect = 4 cycles. This bench
 * shows how latency and profitable-sleep behave if the circuit costs
 * were different — the sensitivity analysis behind HPC-mesh's
 * criticism in Section 7.1 (which assumed an optimistic 3-cycle
 * wake-up).
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    const RunParams rp = bench::sweep_params();
    SyntheticConfig traffic;
    traffic.load = 0.05;

    // Ablations A and B are independent points; one batch covers both.
    const std::vector<int> wakeups = {3, 6, 10, 20, 40};
    const std::vector<int> breakevens = {0, 6, 12, 24, 48};
    std::vector<RunItem> items;
    for (int t_wakeup : wakeups) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.t_wakeup = t_wakeup;
        items.push_back(RunItem{cfg, traffic, rp});
    }
    for (int t_be : breakevens) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.t_breakeven = t_be;
        items.push_back(RunItem{cfg, traffic, rp});
    }
    const auto res = run_batch(items, bench::exec_options(opts));

    bench::header("Ablation A: wake-up delay T_wakeup (4NT-128b-PG)");
    std::printf("%-10s %12s %12s %10s\n", "T_wakeup", "latency",
                "CSC (%)", "power(W)");
    for (std::size_t i = 0; i < wakeups.size(); ++i) {
        const auto &r = res[i];
        std::printf("%-10d %12.1f %12.1f %10.1f%s\n", wakeups[i],
                    r.avg_latency, r.csc_percent, r.power.total(),
                    wakeups[i] == 10 ? "   <== paper (SPICE)" : "");
    }

    bench::header("Ablation B: break-even cycles T_breakeven");
    std::printf("%-12s %12s %10s\n", "T_breakeven", "CSC (%)",
                "power(W)");
    for (std::size_t i = 0; i < breakevens.size(); ++i) {
        const auto &r = res[wakeups.size() + i];
        std::printf("%-12d %12.1f %10.1f%s\n", breakevens[i],
                    r.csc_percent, r.power.total(),
                    breakevens[i] == 12 ? "   <== paper (SPICE)" : "");
    }

    bench::header("Ablation C: idle-detect window T_idle_detect");
    std::printf("%-14s %12s %12s %14s\n", "T_idle_detect", "latency",
                "CSC (%)", "transitions/kcy");
    for (int t_idle : {1, 2, 4, 8, 16, 32}) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.t_idle_detect = t_idle;
        MultiNoc net(cfg);
        SyntheticTraffic gen(&net, traffic, rp.seed);
        PowerMeter meter(net, 0.625);
        for (Cycle c = 0; c < rp.warmup; ++c) {
            gen.step(net.now());
            net.tick();
        }
        meter.begin();
        for (Cycle c = 0; c < rp.measure; ++c) {
            gen.step(net.now());
            net.tick();
        }
        net.finalize_accounting();
        const auto act = net.total_activity();
        std::printf("%-14d %12.1f %12.1f %14.2f%s\n", t_idle,
                    net.metrics().total_latency().mean(),
                    meter.csc_percent(),
                    1000.0 * static_cast<double>(act.sleep_transitions) /
                        static_cast<double>(rp.measure) / 256.0,
                    t_idle == 4 ? "   <== paper" : "");
    }
    std::printf("\nA short idle-detect window gates eagerly (more"
                " transitions, each paying the break-even charge); a"
                " long one forfeits short idle periods.\n");
    return 0;
}
