/**
 * @file
 * Ablation: sensitivity of Catnap to the BFM congestion threshold. The
 * paper tunes BFM to 9 flits (of a 16-flit port) and notes performance
 * loss "could be reduced, if necessary, by reducing the aggressiveness
 * of Catnap's power-gating optimization by adjusting the threshold used
 * for regional congestion detection" (Section 6.2). This bench maps
 * that latency/CSC/power trade-off.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Ablation: BFM threshold trade-off (4NT-128b-PG, "
                  "uniform random)");

    RunParams rp = bench::sweep_params();
    SyntheticConfig traffic;

    std::printf("%-10s %8s | %9s %8s %9s | %9s %8s %9s\n", "threshold",
                "", "lat@0.05", "csc@0.05", "P@0.05", "lat@0.20",
                "csc@0.20", "P@0.20");
    for (double threshold : {3.0, 6.0, 9.0, 12.0, 15.0}) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.congestion.threshold = threshold;
        traffic.load = 0.05;
        const auto lo = run_synthetic(cfg, traffic, rp);
        traffic.load = 0.20;
        const auto hi = run_synthetic(cfg, traffic, rp);
        std::printf("%-10.0f %8s | %9.1f %8.1f %9.1f | %9.1f %8.1f %9.1f"
                    "%s\n",
                    threshold, "", lo.avg_latency, lo.csc_percent,
                    lo.power.total(), hi.avg_latency, hi.csc_percent,
                    hi.power.total(),
                    threshold == 9.0 ? "   <== paper" : "");
    }
    std::printf("\nLower thresholds divert early (better latency, less"
                " gating); higher thresholds gate more but risk latency"
                " spikes near saturation.\n");
    return 0;
}
