/**
 * @file
 * Ablation: sensitivity of Catnap to the BFM congestion threshold. The
 * paper tunes BFM to 9 flits (of a 16-flit port) and notes performance
 * loss "could be reduced, if necessary, by reducing the aggressiveness
 * of Catnap's power-gating optimization by adjusting the threshold used
 * for regional congestion detection" (Section 6.2). This bench maps
 * that latency/CSC/power trade-off.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Ablation: BFM threshold trade-off (4NT-128b-PG, "
                  "uniform random)");

    const RunParams rp = bench::sweep_params();

    const std::vector<double> thresholds = {3.0, 6.0, 9.0, 12.0, 15.0};
    std::vector<MultiNocConfig> configs;
    for (double threshold : thresholds) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap);
        cfg.congestion.threshold = threshold;
        configs.push_back(cfg);
    }
    const auto res = bench::run_load_grid(configs, {0.05, 0.20},
                                          SyntheticConfig{}, rp, opts);

    std::printf("%-10s %8s | %9s %8s %9s | %9s %8s %9s\n", "threshold",
                "", "lat@0.05", "csc@0.05", "P@0.05", "lat@0.20",
                "csc@0.20", "P@0.20");
    for (std::size_t c = 0; c < thresholds.size(); ++c) {
        const auto &lo = res[c][0];
        const auto &hi = res[c][1];
        std::printf("%-10.0f %8s | %9.1f %8.1f %9.1f | %9.1f %8.1f %9.1f"
                    "%s\n",
                    thresholds[c], "", lo.avg_latency, lo.csc_percent,
                    lo.power.total(), hi.avg_latency, hi.csc_percent,
                    hi.power.total(),
                    thresholds[c] == 9.0 ? "   <== paper" : "");
    }
    std::printf("\nLower thresholds divert early (better latency, less"
                " gating); higher thresholds gate more but risk latency"
                " spikes near saturation.\n");
    return 0;
}
