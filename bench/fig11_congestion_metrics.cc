/**
 * @file
 * Figure 11: comparison of local congestion metrics for Catnap's subnet
 * selection + power gating on 4NT-128b-PG — RR (baseline), BFA, Delay,
 * BFM, BFM-local (no OR network), and IQOcc-local — for uniform random,
 * transpose, and bit-complement traffic, plus compensated sleep cycles
 * for RR vs BFM.
 *
 * Paper shape: RR suffers high latency with gating; BFA and IQOcc react
 * too slowly and lose throughput; Delay and BFM perform best; BFM with
 * the regional OR network beats BFM-local on non-uniform traffic.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

namespace {

MultiNocConfig
metric_config(CongestionMetric metric, bool use_rcs)
{
    MultiNocConfig cfg = multi_noc_config(4, GatingKind::kCatnap,
                                          SelectorKind::kCatnap);
    cfg.congestion.metric = metric;
    cfg.congestion.threshold = CongestionConfig::default_threshold(metric);
    cfg.congestion.use_rcs = use_rcs;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 11: congestion metrics for subnet selection "
                  "and gating (4NT-128b-PG)");

    RunParams rp = bench::sweep_params();
    rp.measure = 4000;

    const std::vector<bench::NamedConfig> configs = {
        {"RR", multi_noc_config(4, GatingKind::kIdle,
                                SelectorKind::kRoundRobin)},
        {"BFA", metric_config(CongestionMetric::kBufferAvg, true)},
        {"Delay", metric_config(CongestionMetric::kBlockingDelay, true)},
        {"BFM", metric_config(CongestionMetric::kBufferMax, true)},
        {"BFM-local", metric_config(CongestionMetric::kBufferMax, false)},
        {"IQOcc-Local", metric_config(CongestionMetric::kInjQueueOcc,
                                      false)},
    };

    const std::vector<double> loads = {0.02, 0.05, 0.10, 0.15, 0.20,
                                       0.30, 0.40};
    const PatternKind patterns[] = {PatternKind::kUniformRandom,
                                    PatternKind::kTranspose,
                                    PatternKind::kBitComplement};

    // One batch covers all three patterns; pattern-major grids.
    std::vector<std::vector<std::vector<SyntheticResult>>> res;
    for (const PatternKind pattern : patterns) {
        SyntheticConfig traffic;
        traffic.pattern = pattern;
        res.push_back(
            bench::run_load_grid(configs, loads, traffic, rp, opts));
    }

    const auto names = bench::config_names(configs);
    for (std::size_t p = 0; p < 3; ++p) {
        bench::print_metric_table(
            std::string("avg packet latency (cycles), ") +
                pattern_kind_name(patterns[p]),
            names, loads, res[p],
            [](const SyntheticResult &r) { return r.avg_latency; }, 12,
            1);
    }

    // Rightmost subplot: CSC for RR (naive) vs BFM (best), uniform --
    // the points are already in the uniform-random grid (res[0]).
    std::printf("\n-- compensated sleep cycles (%%), uniform random --\n");
    std::printf("%-8s %12s %12s\n", "load", "RR", "BFM");
    double rr_csc_low = 0.0, bfm_csc_low = 0.0;
    for (std::size_t l = 0; l < 5; ++l) {
        const auto &rr = res[0][0][l];
        const auto &bfm = res[0][3][l];
        std::printf("%-8.2f %12.1f %12.1f\n", loads[l], rr.csc_percent,
                    bfm.csc_percent);
        if (loads[l] == 0.02) {
            rr_csc_low = rr.csc_percent;
            bfm_csc_low = bfm.csc_percent;
        }
    }
    bench::paper_note("CSC @0.02: BFM - RR (pp)", bfm_csc_low - rr_csc_low,
                      50.0);
    return 0;
}
