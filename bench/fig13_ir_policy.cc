/**
 * @file
 * Figure 13: the injection-rate (IR) congestion policy with thresholds
 * 0.04 .. 0.24 packets/node/cycle, for uniform random and transpose
 * traffic (no power gating; Section 6.4).
 *
 * Paper shape: for uniform random a threshold as high as 0.20 works,
 * but transpose saturates much earlier, so it needs <= 0.08 — there is
 * no single IR threshold that both preserves performance and exposes
 * gating opportunity, which is why BFM wins.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 13: IR subnet-selection policy threshold sweep "
                  "(4NT-128b, no PG)");

    RunParams rp = bench::sweep_params();
    rp.measure = 4000;

    const std::vector<double> thresholds = {0.04, 0.08, 0.12,
                                            0.16, 0.20, 0.24};
    const std::vector<double> loads = {0.05, 0.10, 0.15, 0.20, 0.25,
                                       0.30, 0.40, 0.50};

    std::vector<MultiNocConfig> configs;
    for (double t : thresholds) {
        MultiNocConfig cfg = multi_noc_config(4, GatingKind::kAlwaysOn,
                                              SelectorKind::kCatnap);
        cfg.congestion.metric = CongestionMetric::kInjectionRate;
        cfg.congestion.threshold = t;
        configs.push_back(cfg);
    }

    for (const PatternKind pattern :
         {PatternKind::kUniformRandom, PatternKind::kTranspose}) {
        SyntheticConfig traffic;
        traffic.pattern = pattern;
        const auto res =
            bench::run_load_grid(configs, loads, traffic, rp, opts);
        std::printf("\n-- avg packet latency (cycles), %s --\n%-8s",
                    pattern_kind_name(pattern), "load");
        for (double t : thresholds)
            std::printf("   IR-%4.2f", t);
        std::printf("\n");
        for (std::size_t l = 0; l < loads.size(); ++l) {
            std::printf("%-8.2f", loads[l]);
            for (std::size_t c = 0; c < configs.size(); ++c)
                std::printf(" %9.1f", res[c][l].avg_latency);
            std::printf("\n");
        }
    }
    std::printf("\nNote: low IR thresholds divert packets to higher-order"
                " subnets early (hurting gating opportunity); high ones"
                " overload lower subnets on adversarial patterns.\n");
    return 0;
}
