/**
 * @file
 * Figure 14: the 64-core configuration (4x4 concentrated mesh, Section
 * 6.6): a 256-bit Single-NoC vs a two-subnet 128-bit Multi-NoC, both
 * power gated, under uniform random traffic — compensated sleep cycles
 * and packet latency vs offered load.
 *
 * Paper shape: at 0.03 packets/node/cycle the 2-subnet Multi-NoC shows
 * ~50% CSC vs ~17% for Single-NoC (vs ~74% for the 256-core 4-subnet
 * design — benefits grow with core count).
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

namespace {

MultiNocConfig
small_mesh(MultiNocConfig cfg)
{
    cfg.mesh_width = 4;
    cfg.mesh_height = 4;
    cfg.region_width = 2;
    cfg.total_link_bits = 256; // sustains 8 GB/s per core for 64 cores
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 14: 64-core processor (4x4 cmesh, 256-bit "
                  "aggregate)");

    const RunParams rp = bench::sweep_params();

    const std::vector<bench::NamedConfig> configs = {
        {"1NT-256b-PG",
         small_mesh(single_noc_config(256, GatingKind::kIdle))},
        {"2NT-128b-PG",
         small_mesh(multi_noc_config(2, GatingKind::kCatnap))},
    };

    const std::vector<double> loads = {0.01, 0.03, 0.05, 0.10,
                                       0.15, 0.20, 0.30};
    const auto res = bench::run_load_grid(configs, loads,
                                          SyntheticConfig{}, rp, opts);

    std::printf("%-8s %14s %14s %14s %14s\n", "load", "CSC 1NT (%)",
                "CSC 2NT (%)", "lat 1NT (cy)", "lat 2NT (cy)");
    double csc1_low = 0.0, csc2_low = 0.0;
    for (std::size_t l = 0; l < loads.size(); ++l) {
        const auto &r1 = res[0][l];
        const auto &r2 = res[1][l];
        std::printf("%-8.2f %14.1f %14.1f %14.1f %14.1f\n", loads[l],
                    r1.csc_percent, r2.csc_percent, r1.avg_latency,
                    r2.avg_latency);
        if (loads[l] == 0.03) {
            csc1_low = r1.csc_percent;
            csc2_low = r2.csc_percent;
        }
    }
    bench::maybe_save_csv(opts, res);
    bench::paper_note("CSC @0.03, 2NT-128b-PG (%)", csc2_low, 50.0);
    bench::paper_note("CSC @0.03, 1NT-256b-PG (%)", csc1_low, 17.0);
    return 0;
}
