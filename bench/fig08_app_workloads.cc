/**
 * @file
 * Figure 8: network power (static + dynamic) and normalized system
 * performance for the six network configurations over the four Table 3
 * workloads: 1NT-128b, 1NT-512b, 4NT-128b (round-robin), and the same
 * three with power gating (the Multi-NoC PG design is Catnap).
 *
 * Paper shape: Catnap (4NT-128b-PG) averages ~20 W vs ~36 W for
 * 1NT-512b (-44%) at ~5% performance cost; Single-NoC power gating
 * saves almost no static power.
 */
#include <cstdio>

#include "app/system.h"
#include "bench/bench_util.h"

using namespace catnap;

namespace {

struct ConfigSpec
{
    const char *name;
    MultiNocConfig cfg;
};

std::vector<ConfigSpec>
figure8_configs()
{
    return {
        {"1NT-128b", single_noc_config(128)},
        {"1NT-512b", single_noc_config(512)},
        {"4NT-128b", multi_noc_config(4, GatingKind::kAlwaysOn,
                                      SelectorKind::kRoundRobin)},
        {"1NT-128b-PG", single_noc_config(128, GatingKind::kIdle)},
        {"1NT-512b-PG", single_noc_config(512, GatingKind::kIdle)},
        {"4NT-128b-PG", multi_noc_config(4, GatingKind::kCatnap,
                                         SelectorKind::kCatnap)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 8: app workloads -- network power and "
                  "normalized performance");

    AppRunParams ap;
    ap.warmup = 2000;
    ap.measure = 8000;

    const auto configs = figure8_configs();
    const auto mixes = table3_mixes();

    // All mix x config runs are independent; fan them out, mix-major.
    SweepRunner runner(bench::exec_options(opts));
    const auto flat = runner.map<AppRunResult>(
        mixes.size() * configs.size(), [&](std::size_t i) {
            return run_app_workload(configs[i % configs.size()].cfg,
                                    mixes[i / configs.size()], ap);
        });

    // Power table (left plot).
    std::printf("\n-- Network power (W): static / dynamic / total --\n");
    std::printf("%-14s", "workload");
    for (const auto &c : configs)
        std::printf(" %21s", c.name);
    std::printf("\n");

    std::vector<std::vector<AppRunResult>> results(mixes.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::printf("%-14s", mixes[m].name.c_str());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &r = flat[m * configs.size() + c];
            results[m].push_back(r);
            std::printf("   %5.1f /%5.1f /%6.1f",
                        r.power_static.total(),
                        r.power.total() - r.power_static.total(),
                        r.power.total());
        }
        std::printf("\n");
    }
    std::printf("%-14s", "Average");
    std::vector<double> avg_power(configs.size(), 0.0);
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double stat = 0, tot = 0;
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            stat += results[m][c].power_static.total();
            tot += results[m][c].power.total();
        }
        stat /= static_cast<double>(mixes.size());
        tot /= static_cast<double>(mixes.size());
        avg_power[c] = tot;
        std::printf("   %5.1f /%5.1f /%6.1f", stat, tot - stat, tot);
    }
    std::printf("\n");

    // Performance table (right plot), normalized to 1NT-512b (no PG).
    std::printf("\n-- Normalized system performance (vs 1NT-512b) --\n");
    std::printf("%-14s", "workload");
    for (const auto &c : configs)
        std::printf(" %12s", c.name);
    std::printf("\n");
    std::vector<double> avg_perf(configs.size(), 0.0);
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const double base = results[m][1].ipc; // 1NT-512b
        std::printf("%-14s", mixes[m].name.c_str());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const double norm = results[m][c].ipc / base;
            avg_perf[c] += norm / static_cast<double>(mixes.size());
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-14s", "Average");
    for (std::size_t c = 0; c < configs.size(); ++c)
        std::printf(" %12.3f", avg_perf[c]);
    std::printf("\n");

    // Headline claims.
    bench::paper_note("avg power 1NT-512b (W)", avg_power[1], 36.0);
    bench::paper_note("avg power 4NT-128b-PG (W)", avg_power[5], 20.0);
    bench::paper_note("Catnap power saving vs 1NT-512b (%)",
                      100.0 * (1.0 - avg_power[5] / avg_power[1]), 44.0);
    bench::paper_note("Catnap avg normalized performance", avg_perf[5],
                      0.95);
    bench::paper_note("Light: 1NT-512b-PG power (W)",
                      results[0][4].power.total(), 28.0);
    bench::paper_note("Light: 4NT-128b-PG power (W)",
                      results[0][5].power.total(), 7.25);
    bench::paper_note("Heavy: 1NT-512b power (W)",
                      results[3][1].power.total(), 46.8);
    bench::paper_note("Heavy: 4NT-128b-PG power (W)",
                      results[3][5].power.total(), 34.5);
    return 0;
}
