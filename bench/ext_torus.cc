/**
 * @file
 * Extension study: Catnap on a concentrated torus. The paper's
 * conclusion notes that "further study is required to demonstrate
 * similar benefits for other topologies"; this harness runs the core
 * comparison (power, CSC, latency vs load) on a wrap-around version of
 * the 8x8 concentrated mesh, with dateline VCs providing deadlock
 * freedom.
 *
 * Expected shape: the torus's shorter average paths reduce latency and
 * per-packet energy; the Catnap gating benefit (large CSC at low load)
 * carries over unchanged because it depends only on the multi-subnet
 * organization, not on the topology.
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Extension: Catnap on a concentrated torus (8x8, "
                  "4NT-128b-PG)");

    const RunParams rp = bench::sweep_params();

    MultiNocConfig mesh = multi_noc_config(4, GatingKind::kCatnap);
    MultiNocConfig torus = mesh;
    torus.torus = true;

    // Last load (0.45) feeds the saturation comparison below.
    const std::vector<double> loads = {0.01, 0.03, 0.05, 0.10,
                                       0.20, 0.30, 0.45};
    const auto res = bench::run_load_grid({mesh, torus}, loads,
                                          SyntheticConfig{}, rp, opts);

    std::printf("%-8s | %9s %9s %9s | %9s %9s %9s\n", "load",
                "mesh lat", "mesh csc", "mesh P", "torus lat",
                "torus csc", "torus P");
    double mesh_csc_low = 0, torus_csc_low = 0;
    for (std::size_t l = 0; l + 1 < loads.size(); ++l) {
        const auto &m = res[0][l];
        const auto &t = res[1][l];
        std::printf("%-8.2f | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
                    loads[l], m.avg_latency, m.csc_percent,
                    m.power.total(), t.avg_latency, t.csc_percent,
                    t.power.total());
        if (loads[l] == 0.03) {
            mesh_csc_low = m.csc_percent;
            torus_csc_low = t.csc_percent;
        }
    }
    bench::paper_note("CSC @0.03: torus vs mesh (pp difference)",
                      torus_csc_low - mesh_csc_low, 0.0);

    // Saturation throughput comparison (wrap links double the bisection).
    bench::header("Saturation throughput (uniform random, offered 0.45)");
    const auto &m = res[0].back();
    const auto &t = res[1].back();
    std::printf("mesh  : %.3f pkts/node/cycle\ntorus : %.3f "
                "pkts/node/cycle (%.2fx)\n",
                m.accepted_rate, t.accepted_rate,
                t.accepted_rate / m.accepted_rate);
    bench::maybe_save_csv(opts, res);
    return 0;
}
