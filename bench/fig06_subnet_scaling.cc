/**
 * @file
 * Figure 6: throughput and latency of Single-NoC vs Multi-NoC designs
 * with 1/2/4/8 subnets over a constant 512-bit aggregate datapath,
 * uniform-random 512-bit packets, round-robin subnet selection, no
 * power gating (the Section 5.1 characterization).
 *
 * Paper shape: four subnets match Single-NoC throughput; eight lose
 * some; low-load latency rises a few cycles per doubling of subnets
 * (serialization latency).
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main()
{
    bench::header("Figure 6a: saturation throughput vs subnet count");

    const RunParams rp = bench::sweep_params();
    SyntheticConfig traffic; // uniform random, 512-bit packets

    std::vector<MultiNocConfig> cfgs;
    for (int subnets : {1, 2, 4, 8}) {
        cfgs.push_back(multi_noc_config(subnets, GatingKind::kAlwaysOn,
                                        SelectorKind::kRoundRobin));
    }

    std::printf("%-10s %26s\n", "design",
                "saturation throughput (pkts/node/cycle)");
    double thr1 = 0.0, thr4 = 0.0;
    for (const auto &cfg : cfgs) {
        traffic.load = 0.45; // beyond saturation for every design
        const auto r = run_synthetic(cfg, traffic, rp);
        std::printf("%-10s %26.3f\n", cfg.label().c_str(),
                    r.accepted_rate);
        if (cfg.num_subnets == 1)
            thr1 = r.accepted_rate;
        if (cfg.num_subnets == 4)
            thr4 = r.accepted_rate;
    }
    bench::paper_note("4NT/1NT saturation throughput ratio", thr4 / thr1,
                      1.0);

    bench::header("Figure 6b: average packet latency vs offered load");
    std::printf("%-8s", "load");
    for (const auto &cfg : cfgs)
        std::printf(" %10s", cfg.label().c_str());
    std::printf("\n");
    for (double load : bench::load_grid()) {
        std::printf("%-8.2f", load);
        for (const auto &cfg : cfgs) {
            traffic.load = load;
            const auto r = run_synthetic(cfg, traffic, rp);
            std::printf(" %10.1f", r.avg_latency);
        }
        std::printf("\n");
    }
    return 0;
}
