/**
 * @file
 * Figure 6: throughput and latency of Single-NoC vs Multi-NoC designs
 * with 1/2/4/8 subnets over a constant 512-bit aggregate datapath,
 * uniform-random 512-bit packets, round-robin subnet selection, no
 * power gating (the Section 5.1 characterization).
 *
 * Paper shape: four subnets match Single-NoC throughput; eight lose
 * some; low-load latency rises a few cycles per doubling of subnets
 * (serialization latency).
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace catnap;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bench::header("Figure 6a: saturation throughput vs subnet count");

    const RunParams rp = bench::sweep_params();
    const SyntheticConfig traffic; // uniform random, 512-bit packets

    std::vector<MultiNocConfig> cfgs;
    for (int subnets : {1, 2, 4, 8}) {
        cfgs.push_back(multi_noc_config(subnets, GatingKind::kAlwaysOn,
                                        SelectorKind::kRoundRobin));
    }

    // One batch covers both sub-figures: the saturation point (0.45,
    // beyond saturation for every design) plus the load grid.
    std::vector<double> loads = {0.45};
    const auto grid_loads = bench::load_grid();
    loads.insert(loads.end(), grid_loads.begin(), grid_loads.end());
    const auto res = bench::run_load_grid(cfgs, loads, traffic, rp, opts);

    std::printf("%-10s %26s\n", "design",
                "saturation throughput (pkts/node/cycle)");
    double thr1 = 0.0, thr4 = 0.0;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        const auto &r = res[c][0];
        std::printf("%-10s %26.3f\n", cfgs[c].label().c_str(),
                    r.accepted_rate);
        if (cfgs[c].num_subnets == 1)
            thr1 = r.accepted_rate;
        if (cfgs[c].num_subnets == 4)
            thr4 = r.accepted_rate;
    }
    bench::paper_note("4NT/1NT saturation throughput ratio", thr4 / thr1,
                      1.0);

    bench::header("Figure 6b: average packet latency vs offered load");
    std::printf("%-8s", "load");
    for (const auto &cfg : cfgs)
        std::printf(" %10s", cfg.label().c_str());
    std::printf("\n");
    for (std::size_t l = 0; l < grid_loads.size(); ++l) {
        std::printf("%-8.2f", grid_loads[l]);
        for (std::size_t c = 0; c < cfgs.size(); ++c)
            std::printf(" %10.1f", res[c][l + 1].avg_latency);
        std::printf("\n");
    }
    bench::maybe_save_csv(opts, res);
    return 0;
}
